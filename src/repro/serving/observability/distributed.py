"""Distributed tracing and SLOs: cross-process timelines, burn rates.

The controller's :class:`~repro.serving.observability.tracing.TickTracer`
sees ``shard_step`` as one opaque wall-clock span per shard.  This module
supplies everything needed to open that box:

* **clock rebasing** -- workers run in other processes (possibly other
  machines), so their ``time.perf_counter`` values live on unrelated
  timelines.  :func:`estimate_clock_offset` turns the ``hello``
  round-trip into an NTP-style midpoint estimate (offset +/- RTT/2) that
  maps worker timestamps onto the controller's clock;
* **timeline assembly** -- :func:`assemble_tick_timeline` merges the
  controller's own tick spans with each shard's piggybacked
  recv/decode/step timings (rebased, then clamped inside the shard's
  RPC envelope so measurement jitter can never make a child span escape
  its parent) into one :class:`TickTimeline`;
* **export** -- :func:`write_trace_events` serializes timelines as
  Chrome trace-event JSON, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev; :func:`timeline_from_flight` reconstructs a
  coarse per-shard timeline from a flight recorder log's journal
  timestamps, so even a crash-scene artifact can be visualized;
* **SLOs** -- :class:`SLOTracker` evaluates declared latency objectives
  every tick and computes multi-window error-budget burn rates
  (Google-SRE style: page when both a short and a long window burn the
  budget faster than a threshold).  Everything is tick-count based and
  recomputable offline from recorded telemetry via
  :func:`recompute_burn_rates`, so an alert is always auditable.

The module is dependency-free and purely functional apart from the two
small stateful classes (:class:`SLOTracker`, :class:`TraceExporter`);
nothing here imports the cluster or controller.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError

__all__ = [
    "SLO",
    "SLOTracker",
    "SLOVerdict",
    "TickTimeline",
    "TimelineSpan",
    "TraceExporter",
    "assemble_tick_timeline",
    "burn_rate",
    "estimate_clock_offset",
    "recompute_burn_rates",
    "timeline_from_flight",
    "trace_events",
    "validate_trace_events",
    "write_trace_events",
]

CONTROLLER_TRACK = "controller"


# ---------------------------------------------------------------------------
# Clock rebasing
# ---------------------------------------------------------------------------

def estimate_clock_offset(t_request: float, t_reply: float, worker_clock: float):
    """NTP-style offset of a worker's clock from the controller's.

    ``t_request``/``t_reply`` are controller timestamps taken immediately
    before sending and after receiving one request/reply round trip;
    ``worker_clock`` is the worker's own clock read while serving it.
    Assuming the worker read its clock near the midpoint of the round
    trip, ``worker_clock + offset`` lands on the controller timeline,
    with a worst-case error of half the round-trip time (returned as the
    second element).
    """
    t_request = float(t_request)
    t_reply = float(t_reply)
    if t_reply < t_request:
        raise ValidationError(
            f"reply timestamp {t_reply!r} precedes request timestamp "
            f"{t_request!r}; offsets need monotonic controller reads"
        )
    midpoint = 0.5 * (t_request + t_reply)
    return midpoint - float(worker_clock), 0.5 * (t_reply - t_request)


def _offset_of(clock_offsets, shard) -> float:
    if not clock_offsets:
        return 0.0
    entry = clock_offsets.get(shard, 0.0)
    if isinstance(entry, dict):
        return float(entry.get("offset", 0.0))
    return float(entry)


# ---------------------------------------------------------------------------
# Timeline assembly
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TimelineSpan:
    """One interval on the merged tick timeline (absolute start, track)."""

    name: str
    start: float
    seconds: float
    track: str
    meta: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "track": self.track,
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class TickTimeline:
    """All spans of one tick, controller and workers, on one clock."""

    tick: int
    spans: tuple = ()

    def tracks(self) -> tuple:
        seen = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        return tuple(seen)

    def as_dict(self) -> dict:
        return {"tick": self.tick, "spans": [s.as_dict() for s in self.spans]}


def _clamp_into(lo: float, hi: float, start: float, end: float):
    """Clamp ``[start, end]`` strictly inside ``(lo, hi)``.

    Rebased worker timestamps carry up to RTT/2 of uncertainty, so a
    child interval can numerically poke outside its parent envelope even
    though it physically happened inside it; clamping restores the
    physical truth (strict containment) without inventing time.
    """
    eps = max((hi - lo) * 1e-6, 1e-12)
    lo, hi = lo + eps, hi - eps
    if hi < lo:  # degenerate envelope: collapse to its midpoint
        mid = 0.5 * (lo + hi)
        return mid, mid
    start = min(max(start, lo), hi)
    end = min(max(end, start), hi)
    return start, end


def _worker_spans(shard, record, offset):
    """Rebase one shard's piggybacked phase timings into timeline spans."""
    telemetry = record.get("telemetry")
    if not telemetry:
        return []
    try:
        t0, t1 = (float(t) + offset for t in telemetry["recv"])
        t2 = float(telemetry["decoded"]) + offset
        t3 = float(telemetry["stepped"]) + offset
    except (KeyError, TypeError, ValueError):
        return []
    lo = float(record.get("send", t0))
    hi = float(record.get("done", t3))
    track = f"shard {shard} worker"
    spans = []
    w0, w3 = _clamp_into(lo, hi, t0, t3)
    spans.append(
        TimelineSpan("worker", w0, w3 - w0, track, {"shard": shard})
    )
    for name, begin, finish in (
        ("recv", t0, t1),
        ("decode", t1, t2),
        ("step", t2, t3),
    ):
        begin, finish = _clamp_into(w0, w3, begin, finish)
        spans.append(
            TimelineSpan(name, begin, finish - begin, track, {"shard": shard})
        )
    return spans


def assemble_tick_timeline(trace, shard_records=None, clock_offsets=None):
    """Merge a controller tick trace with rebased worker telemetry.

    ``trace`` is a :class:`~repro.serving.observability.tracing.TickTrace`
    whose spans carry absolute start timestamps; ``shard_records`` maps
    shard -> ``{"send", "sent", "done", "telemetry"}`` as captured by
    ``ShardedEngine.step_batch`` (controller clock); ``clock_offsets``
    maps shard -> offset (or ``{"offset": ...}``) from the ``hello``
    handshake.  Worker spans are rebased and clamped inside the shard's
    ``shard_step`` envelope so the merged timeline always nests.
    """
    spans = []
    envelopes = {}
    for record in trace.spans:
        start = getattr(record, "start", None)
        if start is None:
            continue
        span = TimelineSpan(
            record.name,
            float(start),
            float(record.seconds),
            CONTROLLER_TRACK,
            dict(record.meta),
        )
        spans.append(span)
        if record.name == "shard_step" and "shard" in record.meta:
            envelopes[record.meta["shard"]] = span
    for shard, record in sorted((shard_records or {}).items()):
        envelope = envelopes.get(shard)
        rpc = dict(record)
        if envelope is not None:
            # The controller's own shard_step span is the authoritative
            # parent: clamp against it, not the raw send/recv reads.
            rpc["send"] = max(
                envelope.start, float(record.get("send", envelope.start))
            )
            rpc["done"] = min(
                envelope.end, float(record.get("done", envelope.end))
            )
        spans.extend(_worker_spans(shard, rpc, _offset_of(clock_offsets, shard)))
    spans.sort(key=lambda s: (s.track != CONTROLLER_TRACK, s.track, s.start))
    return TickTimeline(int(trace.tick), tuple(spans))


# ---------------------------------------------------------------------------
# Chrome trace-event (Perfetto) export
# ---------------------------------------------------------------------------

def trace_events(timelines, *, origin=None) -> list:
    """Flatten timelines into Chrome trace-event dicts (``ph: "X"``)."""
    timelines = list(timelines)
    starts = [s.start for tl in timelines for s in tl.spans]
    if origin is None:
        origin = min(starts) if starts else 0.0
    tids = {CONTROLLER_TRACK: 0}
    events = []
    for timeline in timelines:
        for span in timeline.spans:
            tid = tids.setdefault(span.track, len(tids))
            events.append(
                {
                    "name": span.name,
                    "cat": "tick",
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.seconds * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": {**span.meta, "tick": timeline.tick},
                }
            )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-serving"},
        }
    ]
    for track, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return metadata + events


def write_trace_events(path, timelines, *, origin=None) -> Path:
    """Write timelines as a Chrome trace-event JSON file; returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": trace_events(timelines, origin=origin),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, sort_keys=True) + "\n", "utf-8")
    return path


def validate_trace_events(payload) -> int:
    """Validate a trace-event payload; returns the number of ``X`` events.

    Checks the envelope shape, per-event required keys, and that every
    duration event has finite non-negative ``ts``/``dur`` -- i.e. all
    timestamps were successfully rebased onto one non-negative timeline.
    Raises :class:`~repro.exceptions.ValidationError` on any violation.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValidationError("trace payload must be a dict with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValidationError("'traceEvents' must be a list")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValidationError(f"event {index} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValidationError(f"event {index} is missing {key!r}")
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            raise ValidationError(
                f"event {index} has unsupported phase {event['ph']!r}"
            )
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value != value:
                raise ValidationError(f"event {index} has non-numeric {key!r}")
            if value < 0:
                raise ValidationError(
                    f"event {index} has negative {key!r} ({value!r}); "
                    "timestamps must be rebased onto a non-negative origin"
                )
        complete += 1
    return complete


# ---------------------------------------------------------------------------
# Flight-log reconstruction
# ---------------------------------------------------------------------------

def timeline_from_flight(directory) -> list:
    """Rebuild per-shard RPC timelines from a flight recorder log.

    Flight logs journal every wire frame with a monotonic timestamp, so
    a request/reply pair brackets the shard's round trip.  Each ``step``
    round trip becomes one ``shard_step`` span; a log recorded by a
    build without journal timestamps is rejected loudly.
    """
    from repro.serving.observability.flight import read_flight_log

    _, records = read_flight_log(directory)
    pending = {}
    ticks = {}
    tick_index = 0
    for record in records:
        if record.command != "step":
            continue
        if record.ts is None:
            raise ValidationError(
                "flight log has no journal timestamps (recorded by an "
                "older build); re-record it to export a timeline"
            )
        if record.kind == "req":
            if not pending:
                tick_index += 1
            pending[record.shard] = record.ts
        elif record.kind == "rep" and record.shard in pending:
            start = pending.pop(record.shard)
            ticks.setdefault(tick_index, []).append(
                TimelineSpan(
                    "shard_step",
                    start,
                    max(record.ts - start, 0.0),
                    CONTROLLER_TRACK,
                    {"shard": record.shard, "status": record.status},
                )
            )
    return [
        TickTimeline(tick, tuple(sorted(spans, key=lambda s: s.start)))
        for tick, spans in sorted(ticks.items())
    ]


# ---------------------------------------------------------------------------
# SLOs and error-budget burn rates
# ---------------------------------------------------------------------------

def burn_rate(bad: int, total: int, target: float) -> float:
    """Error-budget burn rate of a window: bad fraction / budget fraction.

    1.0 means the window consumes its budget exactly at the sustainable
    rate; 14.4 (the classic fast-page threshold) means a 99% objective's
    monthly budget would be gone in ~2 days.
    """
    if total <= 0:
        return 0.0
    return (bad / total) / (1.0 - target)


@dataclass(frozen=True)
class SLO:
    """One declared latency objective over the tick stream.

    ``target`` is the fraction of ticks that must complete within
    ``budget_seconds`` (0.99 declares "p99 tick latency <= budget").
    Windows are tick counts, not wall time, so every computation is
    deterministic and offline-recomputable from recorded telemetry.
    """

    name: str
    budget_seconds: float
    target: float = 0.99
    short_window: int = 60
    long_window: int = 600
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("an SLO needs a non-empty name")
        if not self.budget_seconds > 0:
            raise ValidationError(
                f"SLO {self.name!r}: budget_seconds must be > 0, got "
                f"{self.budget_seconds!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValidationError(
                f"SLO {self.name!r}: target must be in (0, 1), got "
                f"{self.target!r} (1.0 leaves no error budget to burn)"
            )
        if not 0 < self.short_window <= self.long_window:
            raise ValidationError(
                f"SLO {self.name!r}: need 0 < short_window <= long_window, "
                f"got {self.short_window!r} / {self.long_window!r}"
            )
        if not 0 < self.slow_burn <= self.fast_burn:
            raise ValidationError(
                f"SLO {self.name!r}: need 0 < slow_burn <= fast_burn, got "
                f"{self.slow_burn!r} / {self.fast_burn!r}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class SLOVerdict:
    """One objective's evaluation of one tick."""

    slo: str
    latency_seconds: float
    breached: bool
    burn_short: float
    burn_long: float
    severity: str | None = None  # "fast", "slow", or None

    @property
    def alerting(self) -> bool:
        return self.severity is not None

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "latency_seconds": self.latency_seconds,
            "breached": self.breached,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "severity": self.severity,
        }


class SLOTracker:
    """Evaluate declared latency SLOs tick by tick.

    Multi-window burn-rate alerting: an objective pages ("fast") only
    when *both* its short and long windows burn faster than
    ``fast_burn`` -- the short window makes the alert responsive, the
    long window keeps one bad tick from paging; "slow" severity uses the
    same rule at ``slow_burn``.  All state is bounded by
    ``long_window`` per objective.
    """

    def __init__(self, objectives):
        objectives = tuple(objectives)
        if not objectives:
            raise ValidationError("SLOTracker needs at least one objective")
        names = [slo.name for slo in objectives]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate SLO names: {sorted(names)}")
        self.objectives = objectives
        self.ticks = 0
        self._windows = {
            slo.name: deque(maxlen=slo.long_window) for slo in objectives
        }
        self._breaches = {slo.name: 0 for slo in objectives}
        self._alerts = {slo.name: {"fast": 0, "slow": 0} for slo in objectives}

    def observe(self, latency_seconds: float) -> tuple:
        """Score one tick's latency against every objective."""
        latency = float(latency_seconds)
        self.ticks += 1
        verdicts = []
        for slo in self.objectives:
            breached = latency > slo.budget_seconds
            window = self._windows[slo.name]
            window.append(breached)
            short, long_ = self._burn(slo, window)
            severity = None
            if min(short, long_) >= slo.fast_burn:
                severity = "fast"
            elif min(short, long_) >= slo.slow_burn:
                severity = "slow"
            if breached:
                self._breaches[slo.name] += 1
            if severity is not None:
                self._alerts[slo.name][severity] += 1
            verdicts.append(
                SLOVerdict(slo.name, latency, breached, short, long_, severity)
            )
        return tuple(verdicts)

    @staticmethod
    def _burn(slo, window):
        bads = list(window)
        shorts = bads[-slo.short_window:]
        return (
            burn_rate(sum(shorts), len(shorts), slo.target),
            burn_rate(sum(bads), len(bads), slo.target),
        )

    def burn_rates(self, name: str) -> dict:
        slo = self._objective(name)
        short, long_ = self._burn(slo, self._windows[name])
        return {"short": short, "long": long_}

    def breaches(self, name: str) -> int:
        self._objective(name)
        return self._breaches[name]

    def alerts(self, name: str) -> dict:
        self._objective(name)
        return dict(self._alerts[name])

    def _objective(self, name):
        for slo in self.objectives:
            if slo.name == name:
                return slo
        raise ValidationError(f"unknown SLO {name!r}")

    def as_dict(self) -> dict:
        """JSON-safe snapshot (bench envelopes, CLI reports)."""
        objectives = {}
        for slo in self.objectives:
            rates = self.burn_rates(slo.name)
            objectives[slo.name] = {
                "budget_seconds": slo.budget_seconds,
                "target": slo.target,
                "short_window": slo.short_window,
                "long_window": slo.long_window,
                "breaches": self._breaches[slo.name],
                "burn_short": rates["short"],
                "burn_long": rates["long"],
                "alerts": dict(self._alerts[slo.name]),
            }
        return {"ticks": self.ticks, "objectives": objectives}


def recompute_burn_rates(latencies, slo) -> dict:
    """Offline burn rates from a recorded latency window.

    Mirrors :class:`SLOTracker` arithmetic exactly: feed it the tick
    latencies the tracker observed (e.g.
    ``[t.latency_seconds for t in controller.telemetry]``) and the
    result matches the live ``burn_rates`` bit for bit -- the audit
    trail for any alert the tracker raised.
    """
    bads = [float(latency) > slo.budget_seconds for latency in latencies]
    bads = bads[-slo.long_window:]
    shorts = bads[-slo.short_window:]
    return {
        "short": burn_rate(sum(shorts), len(shorts), slo.target),
        "long": burn_rate(sum(bads), len(bads), slo.target),
    }


# ---------------------------------------------------------------------------
# Per-tick export sink
# ---------------------------------------------------------------------------

class TraceExporter:
    """Accumulate per-tick timelines and write one Perfetto trace file.

    Wire it to a controller's ``on_tick`` hook: after each tick, call
    :meth:`observe` with the tracer's last trace and the engine (whose
    ``last_rpc``/``clock_offsets`` supply the worker side, when it is a
    :class:`~repro.serving.cluster.ShardedEngine`); :meth:`close` writes
    ``trace.json`` into the export directory.
    """

    def __init__(self, directory, *, filename="trace.json", window=65536):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._filename = filename
        self.timelines = deque(maxlen=int(window))

    def observe(self, trace, engine=None) -> None:
        if trace is None:
            return
        shard_records = None
        offsets = None
        if engine is not None:
            rpc = getattr(engine, "last_rpc", None)
            if rpc and rpc.get("tick") == trace.tick:
                shard_records = rpc.get("shards")
            offsets = getattr(engine, "clock_offsets", None)
        self.timelines.append(
            assemble_tick_timeline(trace, shard_records, offsets)
        )

    def close(self) -> Path:
        return write_trace_events(
            self._directory / self._filename, self.timelines
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
