"""Sharded multi-worker serving: N processes, one logical engine.

PR 1's :class:`~repro.serving.engine.StreamingEngine` made a tick of N
streams one vectorized pass, but a single Python process still caps
throughput at one core.  The per-tick pass is embarrassingly parallel
across streams -- each stream's buffer, fusion prefix, taQF row, and
monitor are independent -- so this module scales it out:

* :func:`stable_stream_hash` / :class:`HashRing` -- consistent hashing of
  stream ids onto shards.  Stable across processes and runs (unlike
  Python's salted ``hash``), and moving from N to N+1 shards remaps only
  ~1/(N+1) of the streams, which keeps rebalances cheap;
* :class:`ShardedEngine` -- the cluster front end.  Each shard is a child
  process owning a full :class:`StreamingEngine`; a tick's frames fan out
  to their shards as stacked numpy payloads (one pickle per shard, not
  per frame), the workers step concurrently, and the replies -- struct-of-
  arrays, again numpy -- merge back in input order.  Because every stream
  lives on exactly one shard and each shard runs the very same
  ``step_batch``, the merged results are bitwise-identical to a single
  :class:`StreamingEngine` fed the same frames;
* snapshot/restore and live rebalance, built on
  :mod:`repro.serving.state`: workers serialize their registries, the
  parent merges/splits them, and streams migrate between shards with
  buffers, monitor budgets, and TTL clocks intact.

Consistency notes.  Ticks are cluster-wide: every worker's engine ticks on
every ``step_batch`` (shards without frames tick on an empty batch), so
idle-TTL eviction fires on the same tick it would in the single-process
engine.  Input validation the parent can do (duplicate ids, malformed
model-input rows) rejects the whole tick with no state change anywhere;
failures that a worker detects mid-tick (e.g. a failing monitor factory)
reject that shard's tick only -- the affected tick is atomic per shard,
not across shards -- so after a raising clustered tick the recommended
recovery is :meth:`ShardedEngine.restore` from the latest snapshot.

The default transport uses the ``fork`` start method (the engine factory
and its captured models need not be picklable); pass ``start_method=
"spawn"`` with a module-level factory on platforms without fork.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import struct
from typing import Callable, Sequence

import numpy as np

import repro.exceptions as _exceptions
from repro.core.monitor import MonitorDecision, MonitorVerdict
from repro.core.timeseries_wrapper import TimeseriesWrappedOutcome
from repro.exceptions import ClusterError, ValidationError
from repro.serving.engine import (
    StreamFrame,
    StreamingEngine,
    StreamStepResult,
    validate_tick_frames,
)
from repro.serving.registry import RegistryStatistics
from repro.serving.state import RegistrySnapshot

__all__ = ["stable_stream_hash", "HashRing", "ShardedEngine"]


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------

def _encode_for_hash(stream_id) -> bytes:
    """Canonical byte encoding of a stream id, stable across processes.

    Type-tagged so ``1``, ``1.0``, ``True``, and ``"1"`` hash apart.
    Unknown types fall back to ``repr`` -- deterministic within one
    process tree (all placement happens in the parent), but such ids
    should be avoided for snapshots, which require JSON scalars anyway.
    """
    if isinstance(stream_id, bool):  # before int: bool is an int subtype
        return b"b:1" if stream_id else b"b:0"
    if isinstance(stream_id, str):
        return b"s:" + stream_id.encode("utf-8")
    if isinstance(stream_id, int):
        return b"i:" + str(stream_id).encode("ascii")
    if isinstance(stream_id, float):
        return b"f:" + struct.pack(">d", stream_id)
    if isinstance(stream_id, bytes):
        return b"y:" + stream_id
    if stream_id is None:
        return b"n:"
    if isinstance(stream_id, tuple):
        return b"t:" + b"|".join(_encode_for_hash(item) for item in stream_id)
    return b"r:" + repr(stream_id).encode("utf-8", "backslashreplace")


def stable_stream_hash(stream_id) -> int:
    """64-bit placement hash of a stream id.

    Unlike builtin ``hash`` this is independent of ``PYTHONHASHSEED``, so
    a restarted cluster restoring a snapshot recomputes the identical
    shard placement.
    """
    digest = hashlib.blake2b(_encode_for_hash(stream_id), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping stream ids to shard indices.

    Each shard owns ``replicas`` virtual nodes on a 64-bit ring; a stream
    belongs to the first virtual node at or after its own hash.  Changing
    the shard count only moves the streams whose arc gains a new owner:
    ~1/N of them on grow, exactly the retired shard's share on shrink.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    replicas:
        Virtual nodes per shard; more replicas mean a smoother split.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append(
                    (stable_stream_hash(f"shard:{shard}:vnode:{replica}"), shard)
                )
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, stream_id) -> int:
        """The shard index owning this stream id."""
        position = bisect.bisect_right(self._hashes, stable_stream_hash(stream_id))
        if position == len(self._hashes):  # wrap around the ring
            position = 0
        return self._owners[position]


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _encode_step_results(results: list[StreamStepResult]) -> dict:
    """Struct-of-arrays wire encoding of a shard's tick results."""
    n = len(results)
    encoded = {
        "fused": np.fromiter(
            (r.outcome.fused_outcome for r in results), np.int64, n
        ),
        "fused_u": np.fromiter(
            (r.outcome.fused_uncertainty for r in results), float, n
        ),
        "isolated": np.fromiter(
            (r.outcome.isolated_outcome for r in results), np.int64, n
        ),
        "isolated_u": np.fromiter(
            (r.outcome.isolated_uncertainty for r in results), float, n
        ),
        "timestep": np.fromiter((r.outcome.timestep for r in results), np.int64, n),
        "scope_u": np.fromiter(
            (r.outcome.scope_incompliance for r in results), float, n
        ),
    }
    if any(r.verdict is not None for r in results):
        verdicts = [r.verdict for r in results]
        encoded["v_mask"] = np.fromiter((v is not None for v in verdicts), bool, n)
        encoded["v_accepted"] = np.fromiter(
            (v is not None and v.accepted for v in verdicts), bool, n
        )
        encoded["v_u"] = np.fromiter(
            (v.uncertainty if v is not None else 0.0 for v in verdicts), float, n
        )
        encoded["v_threshold"] = np.fromiter(
            (v.threshold if v is not None else 0.0 for v in verdicts), float, n
        )
        encoded["v_hysteresis"] = np.fromiter(
            (v is not None and v.in_hysteresis for v in verdicts), bool, n
        )
    return encoded


def _worker_step(engine: StreamingEngine, payload: dict | None):
    if payload is None:  # frameless tick: time still passes on this shard
        engine.step_batch([])
        return None
    ids = payload["ids"]
    X = payload["X"]
    Q = payload["Q"]
    new_series = payload["new_series"].tolist()
    scope = payload["scope"]
    frames = [
        StreamFrame(
            stream_id=ids[i],
            model_input=X[i],
            stateless_quality_values=Q[i],
            new_series=new_series[i],
            scope_factors=scope[i] if scope is not None else None,
        )
        for i in range(len(ids))
    ]
    return _encode_step_results(engine.step_batch(frames))


def _shard_worker_main(conn, engine_factory, initial_tick: int) -> None:
    """Entry point of one shard process: build the engine, serve requests."""
    try:
        engine = engine_factory()
        engine._tick = initial_tick  # join mid-run at the cluster's tick
    except Exception as error:  # surfaced by the parent's ready handshake
        conn.send(("error", type(error).__name__, str(error)))
        conn.close()
        return
    # Ready handshake carries the engine shape so the parent can mirror
    # the single engine's whole-tick atomic input validation.
    conn.send(
        (
            "ok",
            {
                "n_stateless": len(engine.layout.stateless_names),
                "has_scope_model": engine.scope_model is not None,
            },
        )
    )
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):  # parent went away; shut down quietly
            break
        command, payload = request
        try:
            if command == "step":
                reply = _worker_step(engine, payload)
            elif command == "snapshot":
                # A subset request captures only the named streams --
                # rebalance migration cost is O(moved state), not O(all).
                reply = RegistrySnapshot.capture(
                    engine.registry, tick=engine.tick, stream_ids=payload
                )
            elif command == "restore":
                engine.restore(payload)
                reply = None
            elif command == "inject":
                payload.inject_into(engine.registry)
                reply = None
            elif command == "discard":
                for stream_id in payload:
                    engine.registry.discard(stream_id)
                reply = None
            elif command == "ids":
                reply = engine.registry.stream_ids
            elif command == "stats":
                statistics = engine.registry.statistics
                reply = {
                    "created": statistics.created,
                    "evicted": statistics.evicted,
                    "series_started": statistics.series_started,
                    "n_streams": len(engine.registry),
                    "tick": engine.tick,
                }
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                raise ClusterError(f"unknown worker command {command!r}")
        except Exception as error:
            conn.send(("error", type(error).__name__, str(error)))
        else:
            conn.send(("ok", reply))
    conn.close()


class _WorkerHandle:
    """Parent-side handle of one shard process."""

    def __init__(self, shard: int, process, conn) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn

    def send(self, command: str, payload=None) -> None:
        try:
            self.conn.send((command, payload))
        except (BrokenPipeError, OSError) as error:
            raise ClusterError(
                f"shard {self.shard} worker is gone ({error})"
            ) from None

    def recv(self):
        """Raw protocol reply; ``("error", name, message)`` on failure."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return ("error", "ClusterError", "worker process died mid-request")

    def recv_value(self):
        reply = self.recv()
        if reply[0] != "ok":
            _raise_worker_error(self.shard, reply[1], reply[2])
        return reply[1]

    def request(self, command: str, payload=None):
        self.send(command, payload)
        return self.recv_value()

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.send("close")
            self.recv()
        except ClusterError:
            pass
        self.conn.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)


def _raise_worker_error(shard: int, name: str, message: str):
    """Re-raise a worker-reported error as its original exception type.

    Library exceptions and builtins round-trip by name (so a worker's
    ``ValidationError`` or a monitor factory's ``RuntimeError`` surface
    exactly as the single-process engine would raise them); anything else
    degrades to :class:`ClusterError`.
    """
    import builtins

    exc_type = getattr(_exceptions, name, None) or getattr(builtins, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        raise exc_type(f"[shard {shard}] {message}")
    raise ClusterError(f"shard {shard} failed with {name}: {message}")


# ---------------------------------------------------------------------------
# The cluster front end
# ---------------------------------------------------------------------------

class ShardedEngine:
    """Multi-process serving cluster with the single-engine interface.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one fresh, fully configured
        :class:`StreamingEngine`; called once inside every shard process.
        All shards must be configured identically (same models, window
        cap, monitor factory, TTL) -- the equivalence guarantee is with
        one engine built by this same factory.
    n_shards:
        Number of worker processes (>= 1).
    replicas:
        Virtual nodes per shard on the placement ring.
    start_method:
        Multiprocessing start method; defaults to ``fork`` when the
        platform has it (no factory pickling), else ``spawn``.

    Use as a context manager (or call :meth:`close`) to reap the workers.
    """

    def __init__(
        self,
        engine_factory: Callable[[], StreamingEngine],
        n_shards: int,
        replicas: int = 64,
        start_method: str | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.engine_factory = engine_factory
        self.replicas = replicas
        self._context = multiprocessing.get_context(start_method)
        self._ring = HashRing(n_shards, replicas)
        self._tick = 0
        self._base_statistics = {"created": 0, "evicted": 0, "series_started": 0}
        self._closed = False
        self._workers: list[_WorkerHandle] = []
        try:
            for shard in range(n_shards):
                self._workers.append(self._spawn_worker(shard))
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, shard: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(child_conn, self.engine_factory, self._tick),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(shard, process, parent_conn)
        # Ready handshake: re-raises factory failures and reports the
        # engine shape for parent-side input validation.
        self._engine_shape = handle.recv_value()
        return handle

    def close(self) -> None:
        """Shut down every worker process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort reaping
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ClusterError("this ShardedEngine has been closed")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Number of completed cluster ticks."""
        return self._tick

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    @property
    def n_streams(self) -> int:
        """Streams currently tracked across all shards."""
        return sum(s["n_streams"] for s in self._worker_stats())

    def shard_for(self, stream_id) -> int:
        """The shard currently responsible for a stream id."""
        return self._ring.shard_for(stream_id)

    def _send_all(self, pairs) -> None:
        """Send to many workers; on a failed send, drain the replies of the
        workers already messaged so their pipes stay in protocol (without
        this, the next command would read a stale reply)."""
        sent = []
        try:
            for worker, command, payload in pairs:
                worker.send(command, payload)
                sent.append(worker)
        except ClusterError:
            for worker in sent:
                worker.recv()
            raise

    def _request_all(self, pairs) -> list:
        """Broadcast, then drain every reply before raising the first error."""
        self._send_all(pairs)
        replies = [(worker, worker.recv()) for worker, _, _ in pairs]
        failure = None
        values = []
        for worker, reply in replies:
            if reply[0] != "ok":
                if failure is None:
                    failure = (worker.shard, reply[1], reply[2])
            else:
                values.append(reply[1])
        if failure is not None:
            _raise_worker_error(*failure)
        return values

    def _worker_stats(self) -> list[dict]:
        self._require_open()
        return self._request_all(
            [(worker, "stats", None) for worker in self._workers]
        )

    def statistics(self) -> RegistryStatistics:
        """Cluster-wide lifecycle counters (restored base + all shards)."""
        totals = dict(self._base_statistics)
        for stats in self._worker_stats():
            totals["created"] += stats["created"]
            totals["evicted"] += stats["evicted"]
            totals["series_started"] += stats["series_started"]
        return RegistryStatistics(**totals)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def step_batch(self, frames: Sequence[StreamFrame]) -> list[StreamStepResult]:
        """One cluster tick; same contract and results as the single engine.

        Frames fan out to their shards, every worker steps concurrently
        (shards without frames tick on an empty batch so TTL clocks stay
        cluster-wide), and the merged results come back in input order.
        """
        self._require_open()
        frames = list(frames)
        if not frames:
            self._request_all([(worker, "step", None) for worker in self._workers])
            self._tick += 1
            return []

        # Parent-side validation is the single engine's whole-tick atomic
        # reject, byte-identical by construction (shared helper): every
        # input error checkable without the models rejects here with no
        # state change on any shard.  Only failures a worker detects
        # mid-tick -- a raising monitor factory, a broken taQIM -- remain
        # atomic per shard rather than per cluster.
        rows, quality = validate_tick_frames(
            frames,
            n_stateless=self._engine_shape["n_stateless"],
            has_scope_model=self._engine_shape["has_scope_model"],
        )

        per_shard: list[list[int]] = [[] for _ in self._workers]
        for index, frame in enumerate(frames):
            per_shard[self._ring.shard_for(frame.stream_id)].append(index)

        pairs = []
        for worker, indices in zip(self._workers, per_shard):
            if not indices:
                pairs.append((worker, "step", None))
                continue
            scope = [frames[i].scope_factors for i in indices]
            pairs.append(
                (
                    worker,
                    "step",
                    {
                        "ids": [frames[i].stream_id for i in indices],
                        "X": np.vstack([rows[i] for i in indices]),
                        "Q": np.vstack([quality[i] for i in indices]),
                        "new_series": np.fromiter(
                            (frames[i].new_series for i in indices),
                            bool,
                            len(indices),
                        ),
                        "scope": scope
                        if any(s is not None for s in scope)
                        else None,
                    },
                )
            )
        self._send_all(pairs)

        # Drain every reply before raising so the pipes stay in protocol.
        replies = [worker.recv() for worker in self._workers]
        failure = None
        for worker, reply in zip(self._workers, replies):
            if reply[0] != "ok" and failure is None:
                failure = (worker.shard, reply[1], reply[2])
        if failure is not None:
            _raise_worker_error(*failure)

        results: list[StreamStepResult | None] = [None] * len(frames)
        for reply, indices in zip(replies, per_shard):
            if indices:
                self._merge_shard_results(frames, indices, reply[1], results)
        self._tick += 1
        return results

    @staticmethod
    def _merge_shard_results(frames, indices, encoded, results) -> None:
        """Decode one shard's struct-of-arrays reply into the result list."""
        fused = encoded["fused"].tolist()
        fused_u = encoded["fused_u"].tolist()
        isolated = encoded["isolated"].tolist()
        isolated_u = encoded["isolated_u"].tolist()
        timestep = encoded["timestep"].tolist()
        scope_u = encoded["scope_u"].tolist()
        v_mask = encoded["v_mask"].tolist() if "v_mask" in encoded else None
        if v_mask is not None:
            v_accepted = encoded["v_accepted"].tolist()
            v_u = encoded["v_u"].tolist()
            v_threshold = encoded["v_threshold"].tolist()
            v_hysteresis = encoded["v_hysteresis"].tolist()
        for j, i in enumerate(indices):
            verdict = None
            if v_mask is not None and v_mask[j]:
                verdict = MonitorVerdict(
                    decision=(
                        MonitorDecision.ACCEPT
                        if v_accepted[j]
                        else MonitorDecision.FALLBACK
                    ),
                    uncertainty=v_u[j],
                    threshold=v_threshold[j],
                    in_hysteresis=v_hysteresis[j],
                )
            results[i] = StreamStepResult(
                stream_id=frames[i].stream_id,
                outcome=TimeseriesWrappedOutcome(
                    fused_outcome=fused[j],
                    fused_uncertainty=fused_u[j],
                    isolated_outcome=isolated[j],
                    isolated_uncertainty=isolated_u[j],
                    timestep=timestep[j],
                    scope_incompliance=scope_u[j],
                ),
                verdict=verdict,
            )

    # ------------------------------------------------------------------
    # Snapshot / restore / rebalance
    # ------------------------------------------------------------------
    def snapshot(self) -> RegistrySnapshot:
        """One cluster-wide snapshot: all shards' streams, merged."""
        self._require_open()
        parts = self._request_all(
            [(worker, "snapshot", None) for worker in self._workers]
        )
        for worker, part in zip(self._workers, parts):
            if part.tick != self._tick:
                raise ClusterError(
                    f"shard {worker.shard} is at tick {part.tick}, cluster at "
                    f"{self._tick}; state diverged (restore from a snapshot)"
                )
        merged = RegistrySnapshot(
            tick=self._tick,
            max_buffer_length=parts[0].max_buffer_length,
            idle_ttl=parts[0].idle_ttl,
            statistics=dict(self._base_statistics),
            streams=[stream for part in parts for stream in part.streams],
        )
        for part in parts:
            for key in merged.statistics:
                merged.statistics[key] += part.statistics.get(key, 0)
        return merged

    def restore(self, snapshot: RegistrySnapshot) -> None:
        """Load a snapshot, splitting the streams across the shards.

        Works with snapshots taken from any topology -- a single
        :class:`StreamingEngine` or a cluster with a different shard
        count -- because placement is recomputed from the stable hash
        ring at restore time.
        """
        self._require_open()
        split: list[list] = [[] for _ in self._workers]
        for stream in snapshot.streams:
            split[self._ring.shard_for(stream.stream_id)].append(stream)
        self._request_all(
            [
                (
                    worker,
                    "restore",
                    RegistrySnapshot(
                        tick=snapshot.tick,
                        max_buffer_length=snapshot.max_buffer_length,
                        idle_ttl=snapshot.idle_ttl,
                        statistics={},  # lifecycle counters live in the base
                        streams=streams,
                    ),
                )
                for worker, streams in zip(self._workers, split)
            ]
        )
        self._tick = snapshot.tick
        self._base_statistics = {
            "created": int(snapshot.statistics.get("created", 0)),
            "evicted": int(snapshot.statistics.get("evicted", 0)),
            "series_started": int(snapshot.statistics.get("series_started", 0)),
        }

    def rebalance(self, n_shards: int) -> dict:
        """Grow or shrink the cluster to ``n_shards`` workers, live.

        Consistent hashing keeps the churn minimal: only streams whose
        ring arc changes owner migrate, carrying their full serving state
        (buffer, step counter, monitor budget, TTL clock) via per-stream
        snapshots.  Returns a summary ``{"moved": ..., "from": ...,
        "to": ...}``.
        """
        self._require_open()
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        old_n = len(self._workers)
        if n_shards == old_n:
            return {"moved": 0, "from": old_n, "to": n_shards}
        new_ring = HashRing(n_shards, self.replicas)
        for shard in range(old_n, n_shards):  # grow first: targets must exist
            self._workers.append(self._spawn_worker(shard))

        template: RegistrySnapshot | None = None
        arrivals: list[list] = [[] for _ in range(max(n_shards, old_n))]
        moved = 0
        for shard in range(old_n):
            worker = self._workers[shard]
            ids = worker.request("ids")
            if shard < n_shards:
                moving = [i for i in ids if new_ring.shard_for(i) != shard]
            else:  # retiring shard: drain everything
                moving = ids
            if not moving:
                continue
            part = worker.request("snapshot", moving)
            worker.request("discard", moving)
            template = template or part
            moved += len(part.streams)
            for stream in part.streams:
                arrivals[new_ring.shard_for(stream.stream_id)].append(stream)

        for shard, streams in enumerate(arrivals[:n_shards]):
            if streams:
                self._workers[shard].request(
                    "inject",
                    RegistrySnapshot(
                        tick=self._tick,
                        max_buffer_length=template.max_buffer_length,
                        idle_ttl=template.idle_ttl,
                        statistics={},
                        streams=streams,
                    ),
                )

        for worker in self._workers[n_shards:]:  # shrink last: already drained
            stats = worker.request("stats")  # counters outlive the worker
            for key in self._base_statistics:
                self._base_statistics[key] += stats[key]
            worker.shutdown()
        del self._workers[n_shards:]
        self._ring = new_ring
        return {"moved": moved, "from": old_n, "to": n_shards}
