"""Sharded serving: placement + fan-out/merge over pluggable transports.

PR 1's :class:`~repro.serving.engine.StreamingEngine` made a tick of N
streams one vectorized pass, but a single Python process still caps
throughput at one core.  The per-tick pass is embarrassingly parallel
across streams -- each stream's buffer, fusion prefix, taQF row, and
monitor are independent -- so this module scales it out.  It is the top
of a three-layer stack:

* :mod:`repro.serving.protocol` -- the versioned, pickle-free wire codec
  every worker message travels through (length-prefixed JSON headers +
  raw numpy buffers);
* :mod:`repro.serving.transport` -- worker endpoints: in-proc loopback,
  forked pipe workers, or TCP connections to ``repro serve-worker``
  processes on other machines;
* this module -- :func:`stable_stream_hash` / :class:`HashRing`
  consistent-hash placement, and :class:`ShardedEngine`, the cluster
  front end: a tick's frames fan out to their shards as stacked numpy
  payloads, the workers step concurrently, and the replies -- struct-of-
  arrays, again numpy -- merge back in input order.  Because every stream
  lives on exactly one shard and each shard runs the very same
  ``step_batch``, the merged results are bitwise-identical to a single
  :class:`StreamingEngine` fed the same frames, on every transport.

Fan-out is *overlapped*: each shard's payload is encoded and sent before
the next shard's is built, so shard k computes while the parent encodes
shard k+1 -- the parent's serialization cost hides behind worker compute
instead of serializing the tick (:meth:`ShardedEngine.fanout_stats`
reports the overlap).  Placement is memoized per stream id, so steady-
state ticks do one dict lookup per frame instead of one blake2b digest.

Consistency notes.  Ticks are cluster-wide: every worker's engine ticks on
every ``step_batch`` (shards without frames tick on an empty batch), so
idle-TTL eviction fires on the same tick it would in the single-process
engine.  Input validation the parent can do (duplicate ids, malformed
model-input rows) rejects the whole tick with no state change anywhere;
failures that a worker detects mid-tick (e.g. a failing monitor factory)
reject that shard's tick only -- the affected tick is atomic per shard,
not across shards -- so after a raising clustered tick the recommended
recovery is :meth:`ShardedEngine.restore` from the latest snapshot.  A
worker that dies mid-run surfaces as
:class:`~repro.exceptions.ClusterWorkerError` naming the shard; the dead
shard lands in :attr:`ShardedEngine.dead_shards`, surviving shards stay
in protocol, and further serving calls fail fast until the shard is
revived (:meth:`ShardedEngine.revive_shard` respawns/reconnects the
worker through the transport -- the control plane's
:class:`~repro.serving.failover.FailoverPolicy` drives this
automatically, with snapshot restore + journal replay) or the cluster is
closed and a snapshot restored into a fresh one.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
import time
from collections import deque
from contextlib import nullcontext
from typing import Callable, Sequence

import numpy as np

from repro.core.monitor import MonitorDecision, MonitorVerdict
from repro.core.timeseries_wrapper import TimeseriesWrappedOutcome
from repro.exceptions import ClusterError, ClusterWorkerError, ValidationError
from repro.serving.engine import (
    StreamFrame,
    StreamingEngine,
    StreamStepResult,
    validate_tick_frames,
)
from repro.serving.protocol import require_wire_id, sanitize_wire_scope
from repro.serving.registry import RegistryStatistics
from repro.serving.state import DeltaSnapshot, RegistrySnapshot
from repro.serving.transport import (
    Transport,
    WorkerEndpoint,
    raise_worker_error,
    resolve_transport,
)

__all__ = [
    "stable_stream_hash",
    "HashRing",
    "ShardedEngine",
    "encode_step_results",
]


_NULL_SPAN = nullcontext()


def _null_span(name, **meta):
    """Span stand-in when no tracer is attached.

    The tracer seam is duck-typed (anything with ``.span(name, **meta)``
    returning a context manager) so this module never imports the
    observability package; a cluster without a tracer pays one shared
    no-op context manager per phase and nothing else.
    """
    return _NULL_SPAN


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------

def _encode_for_hash(stream_id) -> bytes:
    """Canonical byte encoding of a stream id, stable across processes.

    Type-tagged so ``1``, ``1.0``, ``True``, and ``"1"`` hash apart.
    Unknown types fall back to ``repr`` -- deterministic within one
    process tree (all placement happens in the parent), but such ids
    should be avoided for snapshots and wire transports, which require
    JSON scalars anyway.
    """
    if isinstance(stream_id, bool):  # before int: bool is an int subtype
        return b"b:1" if stream_id else b"b:0"
    if isinstance(stream_id, str):
        return b"s:" + stream_id.encode("utf-8")
    if isinstance(stream_id, int):
        return b"i:" + str(stream_id).encode("ascii")
    if isinstance(stream_id, float):
        return b"f:" + struct.pack(">d", stream_id)
    if isinstance(stream_id, bytes):
        return b"y:" + stream_id
    if stream_id is None:
        return b"n:"
    if isinstance(stream_id, tuple):
        return b"t:" + b"|".join(_encode_for_hash(item) for item in stream_id)
    return b"r:" + repr(stream_id).encode("utf-8", "backslashreplace")


def stable_stream_hash(stream_id) -> int:
    """64-bit placement hash of a stream id.

    Unlike builtin ``hash`` this is independent of ``PYTHONHASHSEED``, so
    a restarted cluster restoring a snapshot recomputes the identical
    shard placement.
    """
    digest = hashlib.blake2b(_encode_for_hash(stream_id), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping stream ids to shard indices.

    Each shard owns ``replicas`` virtual nodes on a 64-bit ring; a stream
    belongs to the first virtual node at or after its own hash.  Changing
    the shard count only moves the streams whose arc gains a new owner:
    ~1/N of them on grow, exactly the retired shard's share on shrink.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    replicas:
        Virtual nodes per shard; more replicas mean a smoother split.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append(
                    (stable_stream_hash(f"shard:{shard}:vnode:{replica}"), shard)
                )
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_for_hash(self, stream_hash: int) -> int:
        """The shard owning a precomputed :func:`stable_stream_hash`."""
        position = bisect.bisect_right(self._hashes, stream_hash)
        if position == len(self._hashes):  # wrap around the ring
            position = 0
        return self._owners[position]

    def shard_for(self, stream_id) -> int:
        """The shard index owning this stream id."""
        return self.shard_for_hash(stable_stream_hash(stream_id))


# ---------------------------------------------------------------------------
# Step-result wire shape (struct-of-arrays, shared by every transport)
# ---------------------------------------------------------------------------

def encode_step_results(results: list[StreamStepResult]) -> dict:
    """Struct-of-arrays encoding of a shard's tick results.

    The worker-side half of the merge contract: plain numpy arrays (never
    JSON floats), so the parent's decoded results are bitwise-identical
    to the worker's on any transport.
    """
    n = len(results)
    encoded = {
        "fused": np.fromiter(
            (r.outcome.fused_outcome for r in results), np.int64, n
        ),
        "fused_u": np.fromiter(
            (r.outcome.fused_uncertainty for r in results), float, n
        ),
        "isolated": np.fromiter(
            (r.outcome.isolated_outcome for r in results), np.int64, n
        ),
        "isolated_u": np.fromiter(
            (r.outcome.isolated_uncertainty for r in results), float, n
        ),
        "timestep": np.fromiter((r.outcome.timestep for r in results), np.int64, n),
        "scope_u": np.fromiter(
            (r.outcome.scope_incompliance for r in results), float, n
        ),
    }
    if any(r.verdict is not None for r in results):
        verdicts = [r.verdict for r in results]
        encoded["v_mask"] = np.fromiter((v is not None for v in verdicts), bool, n)
        encoded["v_accepted"] = np.fromiter(
            (v is not None and v.accepted for v in verdicts), bool, n
        )
        encoded["v_u"] = np.fromiter(
            (v.uncertainty if v is not None else 0.0 for v in verdicts), float, n
        )
        encoded["v_threshold"] = np.fromiter(
            (v.threshold if v is not None else 0.0 for v in verdicts), float, n
        )
        encoded["v_hysteresis"] = np.fromiter(
            (v is not None and v.in_hysteresis for v in verdicts), bool, n
        )
    return encoded


# ---------------------------------------------------------------------------
# The cluster front end
# ---------------------------------------------------------------------------

#: Safety valve for the placement memo: ids seen since the last clear.
#: Far above any realistic live-stream count; on overflow the memo is
#: dropped wholesale (it is a pure cache -- correctness is unaffected).
_PLACEMENT_CACHE_LIMIT = 1 << 20


class ShardedEngine:
    """Multi-worker serving cluster with the single-engine interface.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one fresh, fully configured
        :class:`StreamingEngine`; called once per shard (inside the
        worker process for pipe, in-process for inproc).  TCP workers
        build their own engines from their ``serve-worker`` flags, but
        the factory is still required and must be configured identically:
        the cluster probes it once for a config fingerprint and rejects
        remote workers that differ.  All shards must be configured
        identically (same models, window cap, monitor factory, TTL) --
        the equivalence guarantee is with one engine built by this same
        factory.
    n_shards:
        Number of shard workers (>= 1).
    replicas:
        Virtual nodes per shard on the placement ring.
    start_method:
        Multiprocessing start method for the default pipe transport;
        ``fork`` when the platform has it (no factory pickling), else
        ``spawn``.  Ignored for an explicit ``transport``.
    transport:
        A :class:`~repro.serving.transport.Transport` instance, or one of
        ``"pipe"`` (default), ``"inproc"``, ``"tcp:HOST:PORT,..."``.
    inflight_window:
        Maximum cluster ticks in flight at once (>= 1).  At 1 (the
        default) :meth:`step_batch` is the only serving path and nothing
        changes.  Above 1 a caller may pipeline:
        :meth:`submit_batch` fans tick t+1 out while tick t's replies
        are still streaming back, and :meth:`collect_batch` merges
        completed ticks strictly in submission order -- results are
        bitwise-identical to lockstep because every shard still serves
        its requests FIFO.  Requests are tick-tagged on the wire and the
        echo is verified, so replies can never pair with the wrong tick.

    Use as a context manager (or call :meth:`close`) to reap the workers.
    """

    def __init__(
        self,
        engine_factory: Callable[[], StreamingEngine],
        n_shards: int,
        replicas: int = 64,
        start_method: str | None = None,
        transport: Transport | str | None = None,
        inflight_window: int = 1,
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if inflight_window < 1:
            raise ValidationError(
                f"inflight_window must be >= 1, got {inflight_window}"
            )
        self.engine_factory = engine_factory
        self.replicas = replicas
        self.inflight_window = inflight_window
        self.transport = resolve_transport(transport, start_method=start_method)
        limit = self.transport.max_shards()
        if limit is not None and n_shards > limit:
            raise ValidationError(
                f"transport {self.transport.name!r} can place at most {limit} "
                f"shard(s), got n_shards={n_shards}"
            )
        self._ring = HashRing(n_shards, replicas)
        self._hash_cache: dict = {}
        self._shard_cache: dict = {}
        self._tick = 0
        self._base_statistics = {"created": 0, "evicted": 0, "series_started": 0}
        self._closed = False
        self._dead_shards: set[int] = set()
        self._fanout_ticks = 0
        self._fanout_encode_seconds = 0.0
        self._fanout_overlap_seconds = 0.0
        #: Submitted-but-uncollected ticks, oldest first; each entry is
        #: one :meth:`submit_batch`'s bookkeeping.  Depth lives here (not
        #: on endpoints) so proxy transports (chaos, flight recording)
        #: need no introspection surface.
        self._inflight: deque = deque()
        self._inflight_max_depth = 0
        #: Surviving shards' ok replies from the last failed lockstep
        #: tick (see :meth:`salvage_step`); ``None`` = nothing to salvage.
        self._salvage: dict | None = None
        #: Optional tick tracer (duck-typed; see :func:`_null_span`).
        #: The :class:`~repro.serving.controller.ServingController`
        #: attaches its own here so fan-out / per-shard step / merge
        #: spans land in the same per-tick trace as the control plane's.
        #: A tracer also turns on trace-context propagation: each step
        #: request carries a sampled trace context and workers piggyback
        #: their recv/decode/step timings on the reply.
        self.tracer = None
        #: Per-shard clock offsets from the hello handshake (NTP-style
        #: midpoint estimate): ``{shard: {"offset", "uncertainty"}}``,
        #: mapping worker ``perf_counter`` values onto this process's.
        self._clock_offsets: dict[int, dict] = {}
        #: Cumulative worker-reported phase seconds per shard (from
        #: piggybacked reply telemetry; only grows on traced ticks).
        self._worker_phase_seconds: dict[int, dict] = {}
        #: The most recent traced tick's per-shard RPC envelopes and
        #: piggybacked telemetry, for timeline assembly.
        self._last_rpc: dict | None = None
        self._engine_shape: dict | None = None
        self._workers: list[WorkerEndpoint] = []
        try:
            if self.transport.workers_self_configured:
                # TCP workers build engines from their own flags; probe
                # the cluster's factory once so a worker started with
                # different flags is rejected at the hello handshake
                # instead of silently serving non-equivalent results.
                from repro.serving.transport import WorkerServicer

                self._engine_shape = WorkerServicer(
                    engine_factory()
                ).engine_shape()
            for shard in range(n_shards):
                self._workers.append(self._spawn_worker(shard))
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, shard: int) -> WorkerEndpoint:
        return self._handshake(self.transport.connect(shard, self.engine_factory))

    def _handshake(self, endpoint: WorkerEndpoint) -> WorkerEndpoint:
        shard = endpoint.shard
        try:
            # Hello handshake: joins the worker at the cluster tick,
            # re-raises factory failures, and reports the engine shape +
            # config fingerprint.  Bounded by the transport's handshake
            # timeout so a silent TCP peer fails fast, not forever.
            # ``_clock`` asks the worker to return its monotonic clock;
            # with our timestamps around the round trip that yields an
            # NTP-style offset estimate (accurate to +/- RTT/2) used to
            # rebase piggybacked worker timings onto this timeline.
            endpoint.set_timeout(self.transport.handshake_timeout)
            t_request = time.perf_counter()
            shape = endpoint.request(
                "hello",
                {"initial_tick": self._tick, "shard": shard, "_clock": True},
            )
            t_reply = time.perf_counter()
            endpoint.set_timeout(None)
            hello_telemetry = getattr(endpoint, "last_telemetry", None)
            offset, uncertainty = 0.0, 0.0
            if hello_telemetry and "clock" in hello_telemetry:
                from repro.serving.observability.distributed import (
                    estimate_clock_offset,
                )

                offset, uncertainty = estimate_clock_offset(
                    t_request, t_reply, hello_telemetry["clock"]
                )
            self._clock_offsets[shard] = {
                "offset": offset, "uncertainty": uncertainty,
            }
            # Every worker must run an identically configured engine.
            # For self-configuring (TCP) workers the reference is the
            # cluster's own factory fingerprint; otherwise shard 0's --
            # a mismatched flag must fail here, not silently break the
            # equivalence guarantee.
            if self._engine_shape is None:
                self._engine_shape = shape
            elif shape != self._engine_shape:
                raise ClusterError(
                    f"shard {shard} worker reports engine configuration "
                    f"{shape}, but the cluster expects "
                    f"{self._engine_shape}; all workers must be started "
                    "with engine flags identical to the cluster's"
                )
        except Exception:
            endpoint.shutdown()
            raise
        return endpoint

    def close(self) -> None:
        """Shut down every worker endpoint (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            # Settle any open window so the byte transports' goodbye
            # handshake finds its channels in protocol.
            self.abort_window()
        except Exception:
            pass
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort reaping
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ClusterError("this ShardedEngine has been closed")

    def _require_healthy(self) -> None:
        self._require_open()
        if self._dead_shards:
            dead = sorted(self._dead_shards)
            raise ClusterWorkerError(
                f"shard(s) {dead} have died; revive_shard() them (and "
                "restore the latest snapshot) or close this cluster and "
                "restore into a fresh one",
                shard=dead[0],
            )

    def _note_dead(self, shard: int | None) -> None:
        if shard is not None:
            self._dead_shards.add(shard)

    def _require_drained(self) -> None:
        """Control-plane operations (snapshot, restore, rebalance, stats)
        interleave whole request/replies on the worker channels, so they
        must not run while step replies are still owed -- the caller
        collects (or aborts) the window first."""
        if self._inflight:
            raise ClusterError(
                f"{len(self._inflight)} tick(s) still in flight; "
                "collect_batch() or abort_window() before control-plane "
                "operations"
            )

    def abort_window(self) -> int:
        """Drain and discard every in-flight tick's replies.

        The failover primitive: after a worker death mid-window the
        submitted ticks can no longer complete in order, so their
        pending replies are read off every channel (keeping surviving
        workers in protocol -- an unread reply would poison the next
        request) and dropped.  Workers observed dead while draining land
        in :attr:`dead_shards`.  Returns the number of ticks aborted;
        the caller re-submits them after recovery (they were never
        counted as completed cluster ticks).
        """
        aborted = len(self._inflight)
        while self._inflight:
            record = self._inflight.popleft()
            for shard in record.get("pending", ()):
                worker = self._workers[shard]
                reply = worker.recv()
                if reply[0] != "ok" and not worker.alive:
                    self._note_dead(shard)
        return aborted

    def revive_shard(
        self,
        shard: int,
        snapshot: RegistrySnapshot | None = None,
        statistics: dict | None = None,
    ) -> None:
        """Respawn/reconnect the worker for ``shard``, clearing it from
        :attr:`dead_shards`.

        The transport tears down the dead endpoint (reaping a killed pipe
        child, terminating a wedged one, closing a poisoned socket) and
        brings up a replacement -- a re-forked process for pipe, a
        reconnect to the same ``serve-worker`` address for TCP -- which
        then completes the usual hello handshake at the cluster's current
        tick.  The fresh worker starts with an *empty* registry.

        Two ways to refill it:

        * pass ``snapshot`` (a cluster-wide snapshot): only the streams
          the current ring places on this shard are restored into the
          fresh worker, at ``snapshot.tick``.  The caller must then
          replay that shard forward to the cluster tick before serving
          resumes -- the contract the control plane's journal replay
          implements;
        * leave it ``None`` and restore the whole cluster afterwards
          (the controller's full-recovery fallback): simplest, and keeps
          the cluster-wide statistics exact, since per-worker lifecycle
          counters died with the old worker.

        ``statistics``, when given with ``snapshot``, seeds the revived
        worker's lifecycle counters (the dead worker's counters as of
        the checkpoint) so shard-local recovery keeps cluster-wide
        statistics exact without touching the surviving shards.

        Raises if the replacement cannot be reached (e.g. the TCP worker
        is still down past the transport's connect timeout); the shard
        then stays in :attr:`dead_shards` and the call can be retried.
        """
        self._require_open()
        self._require_drained()
        if not 0 <= shard < len(self._workers):
            raise ValidationError(
                f"shard {shard} is not a current worker "
                f"(cluster has {len(self._workers)})"
            )
        endpoint = self.transport.respawn(
            self._workers[shard], shard, self.engine_factory
        )
        self._workers[shard] = self._handshake(endpoint)
        self._dead_shards.discard(shard)
        if snapshot is not None:
            self._workers[shard].request(
                "restore",
                RegistrySnapshot(
                    tick=snapshot.tick,
                    max_buffer_length=snapshot.max_buffer_length,
                    idle_ttl=snapshot.idle_ttl,
                    # Without explicit counters they live in the base.
                    statistics=dict(statistics) if statistics else {},
                    streams=[
                        stream
                        for stream in snapshot.streams
                        if self.shard_for(stream.stream_id) == shard
                    ],
                ),
            )

    def replay_shard(self, shard: int, batches) -> int:
        """Re-step one revived shard through journaled ticks, alone.

        The O(dead-shard) recovery primitive: after
        :meth:`revive_shard` restored the shard's checkpoint, each
        journaled batch is filtered to the frames this shard owns and
        resent to it -- byte-identical to the lockstep fan-out payloads
        it originally received (frameless batches become empty ticks so
        TTL clocks advance exactly).  Surviving shards are never
        touched.  Returns the number of ticks replayed.
        """
        self._require_open()
        self._require_drained()
        if not 0 <= shard < len(self._workers):
            raise ValidationError(
                f"shard {shard} is not a current worker "
                f"(cluster has {len(self._workers)})"
            )
        worker = self._workers[shard]
        batches = list(batches)
        for frames in batches:
            mine = [
                frame
                for frame in frames
                if self.shard_for(frame.stream_id) == shard
            ]
            if not mine:
                worker.request("step", None)
                continue
            rows, quality = validate_tick_frames(
                mine,
                n_stateless=self._engine_shape["n_stateless"],
                has_scope_model=self._engine_shape["has_scope_model"],
            )
            if self.transport.requires_wire_ids:
                for frame in mine:
                    require_wire_id(frame.stream_id)
                scope_rows = [
                    sanitize_wire_scope(frame.scope_factors, frame.stream_id)
                    for frame in mine
                ]
            else:
                scope_rows = [frame.scope_factors for frame in mine]
            payload = self._shard_payload(
                mine,
                np.asarray(rows),
                np.asarray(quality),
                np.fromiter(
                    (frame.new_series for frame in mine), bool, len(mine)
                ),
                scope_rows,
                list(range(len(mine))),
            )
            worker.request("step", payload)
        return len(batches)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Number of completed cluster ticks."""
        return self._tick

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    @property
    def transport_name(self) -> str:
        """The active transport's short name ("inproc"/"pipe"/"tcp")."""
        return self.transport.name

    @property
    def dead_shards(self) -> list[int]:
        """Shards observed dead or out of protocol (excluded from serving)."""
        return sorted(self._dead_shards)

    @property
    def inflight_depth(self) -> int:
        """Submitted-but-uncollected ticks currently in the window."""
        return len(self._inflight)

    @property
    def n_streams(self) -> int:
        """Streams currently tracked across all shards."""
        return sum(s["n_streams"] for s in self._worker_stats())

    def _hash_for(self, stream_id) -> int:
        stream_hash = self._hash_cache.get(stream_id)
        if stream_hash is None:
            if len(self._hash_cache) >= _PLACEMENT_CACHE_LIMIT:
                self._hash_cache.clear()
                self._shard_cache.clear()
            stream_hash = self._hash_cache[stream_id] = stable_stream_hash(stream_id)
        return stream_hash

    def shard_for(self, stream_id) -> int:
        """The shard currently responsible for a stream id (memoized).

        The blake2b digest of each id is computed once and cached, so
        steady-state fan-out costs one dict lookup per frame; a ring
        change (rebalance) remaps the cached digests without re-hashing.
        """
        shard = self._shard_cache.get(stream_id)
        if shard is None:
            shard = self._ring.shard_for_hash(self._hash_for(stream_id))
            self._shard_cache[stream_id] = shard
        return shard

    def _single_inproc_engine(self):
        """The worker engine when exactly one in-proc shard is serving.

        Recomputed per tick (rebalance changes the worker list); any
        other topology returns None and takes the fan-out path.
        """
        if len(self._workers) != 1:
            return None
        return getattr(self._workers[0], "engine", None)

    def fanout_stats(self) -> dict:
        """Cumulative fan-out timing since construction.

        ``encode_seconds`` is the parent *CPU* time
        (``time.process_time``) spent building + encoding + handing off
        shard payloads.  CPU rather than wall clock on purpose: the send
        syscall wakes the worker, and on an oversubscribed host the
        scheduler can run the worker's whole step inside the parent's
        wall-clock window -- worker compute masquerading as
        serialization cost.  ``overlap_seconds`` is the part of that CPU
        spent after the first shard's payload was already in flight
        (every later shard's build + send) -- the serialization cost
        hidden behind worker compute rather than serializing the tick.
        ``ticks`` counts non-empty fan-outs.

        ``worker_phase_seconds`` breaks each shard's time down from the
        *worker's* side -- cumulative recv/decode/step/encode/send
        seconds harvested from the telemetry piggybacked on traced step
        replies (encode/send ride one request late, so a shard's final
        reply's encode+send are not included).  The key is present only
        once telemetry has actually been collected (a tracer attached
        and at least one traced tick) -- an untraced run omits it rather
        than reporting a misleading empty breakdown.  This is the direct
        before/after metric for codec work: parent-side
        ``encode_seconds`` vs worker-side decode.

        ``pool`` mirrors the transport's send-side
        :class:`~repro.serving.protocol.BufferPool` counters (hits,
        misses, bytes_copied) for transports that pool their frame
        buffers (pipe, shm); transports without a pool omit the key.

        ``inflight`` describes the pipelined-tick window: the configured
        ``window`` bound, current ``depth`` (submitted-but-uncollected
        ticks), the high-water ``max_depth`` ever reached, and
        ``oldest_age_seconds`` -- how long (monotonic wall clock) the
        oldest in-flight tick has been waiting, the send/recv queue-age
        signal the controller's backpressure reads.

        A metrics-enabled controller mirrors these counters into the
        ``repro_fanout_*_total`` families (as deltas, after each tick),
        so the scraped values and this dict always agree.
        """
        oldest = self._inflight[0]["submitted_at"] if self._inflight else None
        stats = {
            "ticks": self._fanout_ticks,
            "encode_seconds": self._fanout_encode_seconds,
            "overlap_seconds": self._fanout_overlap_seconds,
            "inflight": {
                "window": self.inflight_window,
                "depth": len(self._inflight),
                "max_depth": self._inflight_max_depth,
                "oldest_age_seconds": (
                    time.monotonic() - oldest if oldest is not None else 0.0
                ),
            },
        }
        if self._worker_phase_seconds:
            stats["worker_phase_seconds"] = {
                shard: dict(phases)
                for shard, phases in sorted(self._worker_phase_seconds.items())
            }
        pool = getattr(self.transport, "pool", None)
        if pool is not None:
            stats["pool"] = pool.stats()
        return stats

    @property
    def clock_offsets(self) -> dict:
        """Per-shard hello clock offsets: ``{shard: {"offset",
        "uncertainty"}}`` in seconds, mapping each worker's monotonic
        clock onto this process's (inproc shards are exactly 0)."""
        return {shard: dict(entry) for shard, entry in self._clock_offsets.items()}

    @property
    def last_rpc(self) -> dict | None:
        """The most recent traced tick's per-shard RPC capture:
        ``{"tick": N, "shards": {shard: {"send", "sent", "done",
        "telemetry"}}}`` -- timeline assembly's worker-side input.
        ``None`` until a tick runs with a tracer attached."""
        return self._last_rpc

    def _harvest_worker_phases(self, rpc: dict) -> None:
        """Fold one traced tick's piggybacked worker timings into the
        cumulative per-shard phase totals (``fanout_stats``)."""
        for shard, record in rpc.items():
            telemetry = record.get("telemetry")
            if not telemetry:
                continue
            try:
                t_recv0, t_recv1 = telemetry["recv"]
                decode = float(telemetry["decoded"]) - float(t_recv1)
                step = float(telemetry["stepped"]) - float(telemetry["decoded"])
                recv = float(t_recv1) - float(t_recv0)
            except (KeyError, TypeError, ValueError):
                continue  # old or foreign worker: no (usable) telemetry
            phases = self._worker_phase_seconds.setdefault(
                shard,
                {"recv": 0.0, "decode": 0.0, "step": 0.0,
                 "encode": 0.0, "send": 0.0},
            )
            phases["recv"] += recv
            phases["decode"] += decode
            phases["step"] += step
            phases["encode"] += float(telemetry.get("prev_encode", 0.0))
            phases["send"] += float(telemetry.get("prev_send", 0.0))

    def _send_all(self, pairs) -> None:
        """Broadcast to many workers, all-or-nothing on encoding.

        Every message is *prepared* (encoded, size-checked) before any is
        transmitted, so an unencodable payload rejects the whole
        broadcast with no state change anywhere -- a restore can never be
        half-applied.  A transport failure mid-transmit drains the
        replies of the workers already messaged so their channels stay in
        protocol (without this, the next command would read a stale
        reply)."""
        prepared = [
            (worker, worker.prepare(command, payload))
            for worker, command, payload in pairs
        ]
        sent = []
        try:
            for worker, token in prepared:
                worker.send_prepared(token)
                sent.append(worker)
        except ClusterWorkerError as error:
            for worker in sent:
                worker.recv()
            self._note_dead(error.shard)
            raise

    def _request_all(self, pairs) -> list:
        """Broadcast, then drain every reply before raising the first error."""
        self._send_all(pairs)
        replies = [(worker, worker.recv()) for worker, _, _ in pairs]
        failure = None
        values = []
        for worker, reply in replies:
            if reply[0] != "ok":
                if not worker.alive:
                    self._note_dead(worker.shard)
                if failure is None:
                    failure = (worker.shard, reply[1], reply[2])
            else:
                values.append(reply[1])
        if failure is not None:
            raise_worker_error(*failure)
        return values

    def _worker_stats(self) -> list[dict]:
        self._require_healthy()
        self._require_drained()
        return self._request_all(
            [(worker, "stats", None) for worker in self._workers]
        )

    def statistics(self) -> RegistryStatistics:
        """Cluster-wide lifecycle counters (restored base + all shards)."""
        totals = dict(self._base_statistics)
        for stats in self._worker_stats():
            totals["created"] += stats["created"]
            totals["evicted"] += stats["evicted"]
            totals["series_started"] += stats["series_started"]
        return RegistryStatistics(**totals)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def step_batch(self, frames: Sequence[StreamFrame]) -> list[StreamStepResult]:
        """One cluster tick; same contract and results as the single engine.

        Frames fan out to their shards, every worker steps concurrently
        (shards without frames tick on an empty batch so TTL clocks stay
        cluster-wide), and the merged results come back in input order.
        Fan-out is overlapped: a shard's payload is on the wire before
        the next shard's is encoded.

        A 1-shard in-proc cluster takes the fast path: frames delegate
        straight to the worker engine with no payload packing or result
        re-assembly -- the full single-process throughput behind the
        cluster interface (errors then surface exactly as the single
        engine raises them, without the ``[shard N]`` diagnostic prefix).
        """
        self._require_healthy()
        self._require_drained()
        self._salvage = None
        frames = list(frames)
        engine = self._single_inproc_engine()
        if engine is not None:
            results = engine.step_batch(frames)
            self._tick += 1
            return results
        if not frames:
            self._request_all([(worker, "step", None) for worker in self._workers])
            self._tick += 1
            return []

        tracer = self.tracer
        span = tracer.span if tracer is not None else _null_span

        with span("fanout", frames=len(frames), shards=self.n_shards):
            # Parent-side validation is the single engine's whole-tick
            # atomic reject, byte-identical by construction (shared
            # helper): every input error checkable without the models
            # rejects here with no state change on any shard.  Only
            # failures a worker detects mid-tick -- a raising monitor
            # factory, a broken taQIM -- remain atomic per shard rather
            # than per cluster.
            rows, quality = validate_tick_frames(
                frames,
                n_stateless=self._engine_shape["n_stateless"],
                has_scope_model=self._engine_shape["has_scope_model"],
            )
            if self.transport.requires_wire_ids:
                # Reject before fan-out, like every other input error:
                # payloads that cannot cross the codec (exotic ids,
                # non-JSON scope values) must not half-execute a tick.
                # Numpy-scalar scope values are unwrapped to exact
                # Python equivalents.
                for frame in frames:
                    require_wire_id(frame.stream_id)
                scope_rows = [
                    sanitize_wire_scope(frame.scope_factors, frame.stream_id)
                    for frame in frames
                ]
            else:
                scope_rows = [frame.scope_factors for frame in frames]

            per_shard: list[list[int]] = [[] for _ in self._workers]
            for index, frame in enumerate(frames):
                per_shard[self.shard_for(frame.stream_id)].append(index)

            # Overlapped fan-out: encode + send one shard at a time, busy
            # shards first, so shard k is computing while the parent
            # encodes shard k+1; frameless shards get their (trivial)
            # empty tick last.
            order = [s for s, indices in enumerate(per_shard) if indices]
            order += [s for s, indices in enumerate(per_shard) if not indices]
            sent = []
            first_sent = False
            # Stack the whole tick's inputs once (one vectorized pass)
            # instead of vstack-ing per-frame rows per shard; payloads
            # below fancy-index these matrices.  Shared payload-build
            # work, so it counts toward encode_seconds.  Fan-out cost is
            # metered in parent *CPU* time: on an oversubscribed host
            # the send syscall wakes the worker and the scheduler may
            # run the worker's whole step inside the parent's wall-clock
            # window, which is worker compute, not serialization.
            p_stack = time.process_time()
            rows_matrix = np.asarray(rows)
            quality_matrix = np.asarray(quality)
            new_series_all = np.fromiter(
                (frame.new_series for frame in frames), bool, len(frames)
            )
            encode_seconds = time.process_time() - p_stack
            overlap_seconds = 0.0
            rpc = {} if tracer is not None else None
            try:
                for shard in order:
                    worker = self._workers[shard]
                    indices = per_shard[shard]
                    p_start = time.process_time()
                    payload = (
                        self._shard_payload(
                            frames,
                            rows_matrix,
                            quality_matrix,
                            new_series_all,
                            scope_rows,
                            indices,
                        )
                        if indices
                        else None
                    )
                    if rpc is not None:
                        # Sampled tick: the request carries a trace
                        # context (workers piggyback phase timings on the
                        # reply) and send..recv-done brackets the shard's
                        # RPC envelope on the wall clock (timelines need
                        # wall time, unlike the CPU-metered stats).
                        worker.trace_context = {
                            "tick": self._tick + 1,
                            "shard": shard,
                            "parent": "shard_step",
                            "sampled": True,
                        }
                        rpc[shard] = {"send": time.perf_counter()}
                    worker.send("step", payload)
                    if rpc is not None:
                        rpc[shard]["sent"] = time.perf_counter()
                    shard_seconds = time.process_time() - p_start
                    encode_seconds += shard_seconds
                    if first_sent:
                        # Build + send work done while at least one shard
                        # was already computing its payload.
                        overlap_seconds += shard_seconds
                    first_sent = True
                    sent.append(worker)
            except Exception as error:
                # Whatever failed mid-fan-out (a dead worker, an encode
                # error), drain the shards already stepping so their
                # channels stay in protocol.
                for worker in sent:
                    worker.recv()
                if isinstance(error, ClusterWorkerError):
                    self._note_dead(error.shard)
                raise
            self._fanout_ticks += 1
            self._fanout_encode_seconds += encode_seconds
            self._fanout_overlap_seconds += overlap_seconds

        # Drain every reply before raising so the channels stay in
        # protocol; failures report the lowest-numbered failing shard.
        # Per-shard spans measure the wait for each reply: the first
        # busy shard's span is the cluster's straggler time, later
        # shards' replies are usually already buffered.
        replies = {}
        for shard in order:
            with span("shard_step", shard=shard):
                replies[shard] = self._workers[shard].recv()
            if rpc is not None:
                rpc[shard]["done"] = time.perf_counter()
                rpc[shard]["telemetry"] = getattr(
                    self._workers[shard], "last_telemetry", None
                )
        if rpc is not None:
            self._last_rpc = {"tick": self._tick + 1, "shards": rpc}
            self._harvest_worker_phases(rpc)
        failure = None
        for shard in sorted(order):
            reply = replies[shard]
            if reply[0] != "ok":
                if not self._workers[shard].alive:
                    self._note_dead(shard)
                if failure is None:
                    failure = (shard, reply[1], reply[2])
        if failure is not None:
            # Partial-tick salvage: every shard that answered ok has
            # completed this tick -- keep those replies so the control
            # plane can revive + replay just the failed shard(s) and
            # finish the tick via salvage_step() instead of restoring
            # the whole cluster and re-stepping every shard.
            self._salvage = {
                "frames": frames,
                "per_shard": per_shard,
                "order": order,
                "replies": {
                    shard: replies[shard]
                    for shard in order
                    if replies[shard][0] == "ok"
                },
                "build": (
                    rows_matrix,
                    quality_matrix,
                    new_series_all,
                    scope_rows,
                ),
            }
            raise_worker_error(*failure)

        with span("merge"):
            results: list[StreamStepResult | None] = [None] * len(frames)
            for shard in order:
                indices = per_shard[shard]
                if indices:
                    self._merge_shard_results(
                        frames, indices, replies[shard][1], results
                    )
        self._tick += 1
        return results

    # ------------------------------------------------------------------
    # Partial-tick salvage (O(dead-shard) recovery)
    # ------------------------------------------------------------------
    @property
    def salvage_pending(self) -> bool:
        """True when the last failed lockstep tick kept its survivors'
        replies and can complete via :meth:`salvage_step`."""
        return self._salvage is not None

    def salvage_step(self) -> list[StreamStepResult]:
        """Complete the last failed lockstep tick shard-locally.

        The failed :meth:`step_batch` kept every surviving shard's ok
        reply; after the dead shard is revived (:meth:`revive_shard`
        with its checkpoint) and replayed to the cluster tick
        (:meth:`replay_shard`), this resends the tick's payload to just
        the shard(s) that never answered ok -- byte-identical to the
        original sends, since lockstep frames carry no tick tag --
        merges the fresh replies with the kept ones in input order, and
        completes the cluster tick.  If a resent shard fails again the
        salvage context survives (minus any shard that answered ok
        while draining), so the caller can revive and try once more, or
        fall back to whole-cluster restore + replay.
        """
        self._require_healthy()
        self._require_drained()
        if self._salvage is None:
            raise ClusterError("no partially-completed tick to salvage")
        ctx = self._salvage
        frames = ctx["frames"]
        per_shard = ctx["per_shard"]
        replies = ctx["replies"]
        rows_matrix, quality_matrix, new_series_all, scope_rows = ctx["build"]
        missing = [shard for shard in ctx["order"] if shard not in replies]
        sent = []
        try:
            for shard in missing:
                indices = per_shard[shard]
                payload = (
                    self._shard_payload(
                        frames,
                        rows_matrix,
                        quality_matrix,
                        new_series_all,
                        scope_rows,
                        indices,
                    )
                    if indices
                    else None
                )
                self._workers[shard].send("step", payload)
                sent.append(shard)
        except Exception as error:
            # Drain the shards already resent; ok replies are kept (those
            # shards completed the tick) so a later attempt resends only
            # what is still missing.
            for shard in sent:
                reply = self._workers[shard].recv()
                if reply[0] == "ok":
                    replies[shard] = reply
                elif not self._workers[shard].alive:
                    self._note_dead(shard)
            if isinstance(error, ClusterWorkerError):
                self._note_dead(error.shard)
            raise
        failure = None
        for shard in sent:
            reply = self._workers[shard].recv()
            if reply[0] != "ok":
                if not self._workers[shard].alive:
                    self._note_dead(shard)
                if failure is None:
                    failure = (shard, reply[1], reply[2])
            else:
                replies[shard] = reply
        if failure is not None:
            raise_worker_error(*failure)
        results: list[StreamStepResult | None] = [None] * len(frames)
        for shard in ctx["order"]:
            indices = per_shard[shard]
            if indices:
                self._merge_shard_results(
                    frames, indices, replies[shard][1], results
                )
        self._tick += 1
        self._salvage = None
        return results

    # ------------------------------------------------------------------
    # Pipelined serving: bounded in-flight window
    # ------------------------------------------------------------------
    def submit_batch(self, frames: Sequence[StreamFrame]) -> int:
        """Fan one tick out without waiting for its replies.

        The send half of :meth:`step_batch`, for pipelined callers:
        validation, placement, payload build, and the overlapped
        per-shard sends all happen now; the replies stay on the wire
        until :meth:`collect_batch`.  Up to :attr:`inflight_window`
        ticks may be outstanding; submitting past the bound raises
        (the window is the backpressure boundary, not a buffer).

        Every step request is tick-tagged (reserved ``_tick`` meta) and
        workers echo the tag, so replies provably pair with the tick
        they answer even with several in flight.  Returns the submitted
        tick's number.  Validation failures raise before anything is
        sent -- the window is unchanged.  A worker death mid-fan-out
        drains this tick's partial sends (earlier in-flight ticks stay
        owed; recover via :meth:`abort_window`) and raises.
        """
        self._require_healthy()
        self._salvage = None
        if len(self._inflight) >= self.inflight_window:
            raise ClusterError(
                f"in-flight window is full ({self.inflight_window} "
                "tick(s)); collect_batch() before submitting more"
            )
        frames = list(frames)
        target_tick = self._tick + len(self._inflight) + 1
        submitted_at = time.monotonic()

        engine = self._single_inproc_engine()
        if engine is not None:
            # Single in-proc shard: nothing to overlap with -- the
            # "worker" computes on this thread either way.  Step now so
            # the submit/collect surface (and its ordering guarantee)
            # still holds; results wait in the window for collection.
            results = engine.step_batch(frames)
            self._inflight.append(
                {
                    "kind": "engine",
                    "tick": target_tick,
                    "pending": (),
                    "results": results,
                    "submitted_at": submitted_at,
                }
            )
            self._note_depth()
            return target_tick

        tracer = self.tracer
        span = tracer.span if tracer is not None else _null_span

        if not frames:
            for worker in self._workers:
                worker.tick_tag = target_tick
            self._send_all(
                [(worker, "step", None) for worker in self._workers]
            )
            self._inflight.append(
                {
                    "kind": "empty",
                    "tick": target_tick,
                    "frames": frames,
                    "per_shard": [[] for _ in self._workers],
                    "pending": list(range(len(self._workers))),
                    "rpc": None,
                    "submitted_at": submitted_at,
                }
            )
            self._note_depth()
            return target_tick

        with span("fanout", frames=len(frames), shards=self.n_shards):
            rows, quality = validate_tick_frames(
                frames,
                n_stateless=self._engine_shape["n_stateless"],
                has_scope_model=self._engine_shape["has_scope_model"],
            )
            if self.transport.requires_wire_ids:
                for frame in frames:
                    require_wire_id(frame.stream_id)
                scope_rows = [
                    sanitize_wire_scope(frame.scope_factors, frame.stream_id)
                    for frame in frames
                ]
            else:
                scope_rows = [frame.scope_factors for frame in frames]

            per_shard: list[list[int]] = [[] for _ in self._workers]
            for index, frame in enumerate(frames):
                per_shard[self.shard_for(frame.stream_id)].append(index)

            order = [s for s, indices in enumerate(per_shard) if indices]
            order += [s for s, indices in enumerate(per_shard) if not indices]
            sent = []
            first_sent = False
            p_stack = time.process_time()
            rows_matrix = np.asarray(rows)
            quality_matrix = np.asarray(quality)
            new_series_all = np.fromiter(
                (frame.new_series for frame in frames), bool, len(frames)
            )
            encode_seconds = time.process_time() - p_stack
            overlap_seconds = 0.0
            rpc = {} if tracer is not None else None
            try:
                for shard in order:
                    worker = self._workers[shard]
                    indices = per_shard[shard]
                    p_start = time.process_time()
                    payload = (
                        self._shard_payload(
                            frames,
                            rows_matrix,
                            quality_matrix,
                            new_series_all,
                            scope_rows,
                            indices,
                        )
                        if indices
                        else None
                    )
                    worker.tick_tag = target_tick
                    if rpc is not None:
                        worker.trace_context = {
                            "tick": target_tick,
                            "shard": shard,
                            "parent": "shard_step",
                            "sampled": True,
                        }
                        rpc[shard] = {"send": time.perf_counter()}
                    worker.send("step", payload)
                    if rpc is not None:
                        rpc[shard]["sent"] = time.perf_counter()
                    shard_seconds = time.process_time() - p_start
                    encode_seconds += shard_seconds
                    if first_sent:
                        overlap_seconds += shard_seconds
                    first_sent = True
                    sent.append(worker)
            except Exception as error:
                # Drain only THIS tick's partial sends; earlier in-flight
                # ticks keep their owed replies (abort_window settles
                # them during recovery).  Per-endpoint FIFO pairing makes
                # the drained replies interchangeable -- all discarded.
                for worker in sent:
                    worker.recv()
                if isinstance(error, ClusterWorkerError):
                    self._note_dead(error.shard)
                raise
            self._fanout_ticks += 1
            self._fanout_encode_seconds += encode_seconds
            self._fanout_overlap_seconds += overlap_seconds

        self._inflight.append(
            {
                "kind": "fanout",
                "tick": target_tick,
                "frames": frames,
                "per_shard": per_shard,
                "pending": list(order),
                "rpc": rpc,
                "submitted_at": submitted_at,
            }
        )
        self._note_depth()
        return target_tick

    def collect_batch(self) -> list[StreamStepResult]:
        """Wait for the *oldest* in-flight tick and merge its results.

        The recv half of :meth:`step_batch`: blocks until every shard's
        reply for the oldest submitted tick is in (``await_window``
        spans per shard -- the genuine pipeline stall time, distinct
        from lockstep's ``shard_step`` wait), verifies each reply's tick
        echo, merges in input order (``merge_ready`` span), and
        completes the cluster tick.  Ticks always complete in
        submission order regardless of which shard finishes first --
        that is the ordering guarantee windowed serving keeps.

        A worker failure raises after this tick's replies are fully
        drained; later in-flight ticks remain owed and the caller
        settles them with :meth:`abort_window` before recovery.
        """
        self._require_open()
        if not self._inflight:
            raise ClusterError("collect_batch() with no tick in flight")
        record = self._inflight.popleft()

        if record["kind"] == "engine":
            self._tick += 1
            return record["results"]

        tracer = self.tracer
        span = tracer.span if tracer is not None else _null_span
        rpc = record["rpc"]
        replies = {}
        mismatch = None
        for shard in record["pending"]:
            worker = self._workers[shard]
            with span("await_window", shard=shard, tick=record["tick"]):
                reply = worker.recv()
            replies[shard] = reply
            if rpc is not None and shard in rpc:
                rpc[shard]["done"] = time.perf_counter()
                rpc[shard]["telemetry"] = getattr(
                    worker, "last_telemetry", None
                )
            echo = getattr(worker, "last_reply_tick", None)
            if reply[0] == "ok" and echo is not None and echo != record["tick"]:
                mismatch = mismatch or (shard, echo)
        if rpc is not None:
            self._last_rpc = {"tick": record["tick"], "shards": rpc}
            self._harvest_worker_phases(rpc)
        if mismatch is not None:
            # Belt over the endpoints' suspenders: a reply acknowledged
            # for the wrong tick means pairing is broken cluster-wide.
            shard, echo = mismatch
            self._note_dead(shard)
            raise ClusterError(
                f"shard {shard} answered tick {echo}, expected "
                f"{record['tick']}; reply pairing is broken"
            )
        failure = None
        for shard in sorted(record["pending"]):
            reply = replies[shard]
            if reply[0] != "ok":
                if not self._workers[shard].alive:
                    self._note_dead(shard)
                if failure is None:
                    failure = (shard, reply[1], reply[2])
        if failure is not None:
            raise_worker_error(*failure)

        frames = record["frames"]
        with span("merge_ready", tick=record["tick"], frames=len(frames)):
            results: list[StreamStepResult | None] = [None] * len(frames)
            for shard, indices in enumerate(record["per_shard"]):
                if indices:
                    self._merge_shard_results(
                        frames, indices, replies[shard][1], results
                    )
        self._tick += 1
        return results

    def _note_depth(self) -> None:
        if len(self._inflight) > self._inflight_max_depth:
            self._inflight_max_depth = len(self._inflight)

    @staticmethod
    def _shard_payload(
        frames, rows_matrix, quality_matrix, new_series_all, scope_rows, indices
    ) -> dict:
        """One shard's stacked-numpy step payload for this tick.

        Fancy-indexes the tick-wide matrices (one C-level gather per
        array, bitwise-identical to the per-shard ``np.vstack`` it
        replaced at a fraction of the Python overhead).
        """
        scope = [scope_rows[i] for i in indices]
        idx = np.asarray(indices, dtype=np.intp)
        return {
            "ids": [frames[i].stream_id for i in indices],
            "X": rows_matrix[idx],
            "Q": quality_matrix[idx],
            "new_series": new_series_all[idx],
            "scope": scope if any(s is not None for s in scope) else None,
        }

    @staticmethod
    def _merge_shard_results(frames, indices, encoded, results) -> None:
        """Decode one shard's struct-of-arrays reply into the result list."""
        fused = encoded["fused"].tolist()
        fused_u = encoded["fused_u"].tolist()
        isolated = encoded["isolated"].tolist()
        isolated_u = encoded["isolated_u"].tolist()
        timestep = encoded["timestep"].tolist()
        scope_u = encoded["scope_u"].tolist()
        v_mask = encoded["v_mask"].tolist() if "v_mask" in encoded else None
        if v_mask is not None:
            v_accepted = encoded["v_accepted"].tolist()
            v_u = encoded["v_u"].tolist()
            v_threshold = encoded["v_threshold"].tolist()
            v_hysteresis = encoded["v_hysteresis"].tolist()
        for j, i in enumerate(indices):
            verdict = None
            if v_mask is not None and v_mask[j]:
                verdict = MonitorVerdict(
                    decision=(
                        MonitorDecision.ACCEPT
                        if v_accepted[j]
                        else MonitorDecision.FALLBACK
                    ),
                    uncertainty=v_u[j],
                    threshold=v_threshold[j],
                    in_hysteresis=v_hysteresis[j],
                )
            results[i] = StreamStepResult(
                stream_id=frames[i].stream_id,
                outcome=TimeseriesWrappedOutcome(
                    fused_outcome=fused[j],
                    fused_uncertainty=fused_u[j],
                    isolated_outcome=isolated[j],
                    isolated_uncertainty=isolated_u[j],
                    timestep=timestep[j],
                    scope_incompliance=scope_u[j],
                ),
                verdict=verdict,
            )

    # ------------------------------------------------------------------
    # Snapshot / restore / rebalance
    # ------------------------------------------------------------------
    def snapshot(self) -> RegistrySnapshot:
        """One cluster-wide snapshot: all shards' streams, merged."""
        merged, _ = self.snapshot_shards()
        return merged

    def snapshot_shards(
        self,
    ) -> tuple[RegistrySnapshot, dict[int, RegistrySnapshot]]:
        """One fan-out yielding the merged snapshot AND each shard's part.

        The parts are the control plane's per-shard recovery
        checkpoints: reviving one dead shard restores only its part
        (plus its journal slice, :meth:`replay_shard`) instead of the
        whole cluster.  Each part keeps its worker-local lifecycle
        counters so a revived shard's statistics resume exactly.
        """
        self._require_healthy()
        self._require_drained()
        parts = self._request_all(
            [(worker, "snapshot", None) for worker in self._workers]
        )
        for worker, part in zip(self._workers, parts):
            if part.tick != self._tick:
                raise ClusterError(
                    f"shard {worker.shard} is at tick {part.tick}, cluster at "
                    f"{self._tick}; state diverged (restore from a snapshot)"
                )
        merged = RegistrySnapshot(
            tick=self._tick,
            max_buffer_length=parts[0].max_buffer_length,
            idle_ttl=parts[0].idle_ttl,
            statistics=dict(self._base_statistics),
            streams=[stream for part in parts for stream in part.streams],
        )
        for part in parts:
            for key in merged.statistics:
                merged.statistics[key] += part.statistics.get(key, 0)
        return merged, dict(enumerate(parts))

    def snapshot_delta(self, since_tick: int) -> DeltaSnapshot:
        """Cluster-wide incremental snapshot: streams dirty since a tick.

        Each shard exports only the streams it touched after
        ``since_tick`` plus its live membership; the merged delta, fed
        to :func:`~repro.serving.state.compose_snapshot` over a base
        captured at ``since_tick``, reproduces :meth:`snapshot` at the
        current tick bitwise (same shard-order stream layout, same
        absolute statistics).
        """
        self._require_healthy()
        self._require_drained()
        parts = self._request_all(
            [(worker, "delta", int(since_tick)) for worker in self._workers]
        )
        for worker, part in zip(self._workers, parts):
            if part.tick != self._tick:
                raise ClusterError(
                    f"shard {worker.shard} is at tick {part.tick}, cluster at "
                    f"{self._tick}; state diverged (restore from a snapshot)"
                )
        merged = DeltaSnapshot(
            tick=self._tick,
            base_tick=int(since_tick),
            max_buffer_length=parts[0].max_buffer_length,
            idle_ttl=parts[0].idle_ttl,
            statistics=dict(self._base_statistics),
            streams=[stream for part in parts for stream in part.streams],
            live_ids=[
                stream_id for part in parts for stream_id in part.live_ids
            ],
        )
        for part in parts:
            for key in merged.statistics:
                merged.statistics[key] += part.statistics.get(key, 0)
        return merged

    def restore(self, snapshot: RegistrySnapshot) -> None:
        """Load a snapshot, splitting the streams across the shards.

        Works with snapshots taken from any topology or transport -- a
        single :class:`StreamingEngine`, a pipe cluster restoring into a
        TCP cluster, any shard count -- because the wire format is shared
        and placement is recomputed from the stable hash ring at restore
        time.
        """
        self._require_healthy()
        self._require_drained()
        self._salvage = None  # the tick it belonged to is superseded
        split: list[list] = [[] for _ in self._workers]
        for stream in snapshot.streams:
            split[self.shard_for(stream.stream_id)].append(stream)
        self._request_all(
            [
                (
                    worker,
                    "restore",
                    RegistrySnapshot(
                        tick=snapshot.tick,
                        max_buffer_length=snapshot.max_buffer_length,
                        idle_ttl=snapshot.idle_ttl,
                        statistics={},  # lifecycle counters live in the base
                        streams=streams,
                    ),
                )
                for worker, streams in zip(self._workers, split)
            ]
        )
        self._tick = snapshot.tick
        self._base_statistics = {
            "created": int(snapshot.statistics.get("created", 0)),
            "evicted": int(snapshot.statistics.get("evicted", 0)),
            "series_started": int(snapshot.statistics.get("series_started", 0)),
        }

    def rebalance(self, n_shards: int) -> dict:
        """Grow or shrink the cluster to ``n_shards`` workers, live.

        Consistent hashing keeps the churn minimal: only streams whose
        ring arc changes owner migrate, carrying their full serving state
        (buffer, step counter, monitor budget, TTL clock) via per-stream
        snapshots.  Returns a summary ``{"moved": ..., "from": ...,
        "to": ...}``.
        """
        self._require_healthy()
        self._require_drained()
        self._salvage = None  # placement is about to change under it
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        limit = self.transport.max_shards()
        if limit is not None and n_shards > limit:
            raise ValidationError(
                f"transport {self.transport.name!r} can place at most {limit} "
                f"shard(s), got n_shards={n_shards}"
            )
        old_n = len(self._workers)
        if n_shards == old_n and self._ring.n_shards == n_shards:
            # Worker count AND ring already match.  (After a rebalance
            # that failed mid-flight and was recovered, the worker list
            # may match the target while the ring still doesn't -- the
            # retry must then run the migration, not early-return.)
            return {"moved": 0, "from": old_n, "to": n_shards}
        new_ring = HashRing(n_shards, self.replicas)
        for shard in range(old_n, n_shards):  # grow first: targets must exist
            self._workers.append(self._spawn_worker(shard))

        template: RegistrySnapshot | None = None
        arrivals: list[list] = [[] for _ in range(max(n_shards, old_n))]
        moved = 0
        for shard in range(old_n):
            worker = self._workers[shard]
            ids = worker.request("ids")
            if shard < n_shards:
                moving = [
                    i
                    for i in ids
                    if new_ring.shard_for_hash(self._hash_for(i)) != shard
                ]
            else:  # retiring shard: drain everything
                moving = ids
            if not moving:
                continue
            part = worker.request("snapshot", moving)
            worker.request("discard", moving)
            template = template or part
            moved += len(part.streams)
            for stream in part.streams:
                arrivals[
                    new_ring.shard_for_hash(self._hash_for(stream.stream_id))
                ].append(stream)

        for shard, streams in enumerate(arrivals[:n_shards]):
            if streams:
                self._workers[shard].request(
                    "inject",
                    RegistrySnapshot(
                        tick=self._tick,
                        max_buffer_length=template.max_buffer_length,
                        idle_ttl=template.idle_ttl,
                        statistics={},
                        streams=streams,
                    ),
                )

        for worker in self._workers[n_shards:]:  # shrink last: already drained
            stats = worker.request("stats")  # counters outlive the worker
            for key in self._base_statistics:
                self._base_statistics[key] += stats[key]
            worker.shutdown()
        del self._workers[n_shards:]
        # A dead-shard record pointing past the new worker list refers to
        # a worker that no longer exists; keeping it would wedge
        # _require_healthy on a shard nobody can revive.
        self._dead_shards = {s for s in self._dead_shards if s < n_shards}
        self._ring = new_ring
        # Remap the placement memo from the cached digests -- no re-hash.
        self._shard_cache = {
            stream_id: new_ring.shard_for_hash(stream_hash)
            for stream_id, stream_hash in self._hash_cache.items()
        }
        return {"moved": moved, "from": old_n, "to": n_shards}
