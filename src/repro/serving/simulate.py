"""Simulated serving workloads: interleaved GTSRB situation streams.

Builds the tick-by-tick frame schedule a deployed perception stack would
produce: ``n_streams`` concurrent tracked objects, each replaying
situation-augmented GTSRB-like series frame by frame and starting a fresh
physical object (``new_series=True``) whenever its current series ends.
The schedule is consumed by :meth:`StreamingEngine.step_batch` (one list of
frames per tick) and by the naive per-stream wrapper loop the CLI and the
throughput benchmark compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timeseries_wrapper import (
    TimeseriesAwareUncertaintyWrapper,
    TimeseriesWrappedOutcome,
)
from repro.datasets.gtsrb import GTSRBLikeGenerator
from repro.exceptions import ValidationError
from repro.models.features import PrototypeFeatureModel
from repro.serving.controller import ServingController
from repro.serving.engine import StreamFrame, StreamingEngine

__all__ = [
    "StreamWorkload",
    "build_stream_workload",
    "replay_engine",
    "replay_naive",
    "replay_results",
]


@dataclass
class StreamWorkload:
    """A precomputed serving workload: frames grouped per tick.

    Attributes
    ----------
    ticks:
        ``ticks[t]`` holds one :class:`StreamFrame` per stream for tick
        ``t``; every stream appears in every tick.
    n_streams:
        Number of concurrent streams.
    """

    ticks: list[list[StreamFrame]]
    n_streams: int

    @property
    def n_ticks(self) -> int:
        return len(self.ticks)

    @property
    def n_frames(self) -> int:
        """Total frames over all ticks and streams."""
        return sum(len(t) for t in self.ticks)


def build_stream_workload(
    feature_model: PrototypeFeatureModel,
    n_streams: int,
    n_ticks: int,
    rng: np.random.Generator,
    generator: GTSRBLikeGenerator | None = None,
    settings_per_series: int = 1,
    priority_classes: int = 1,
) -> StreamWorkload:
    """Build an interleaved replay of situation-augmented GTSRB streams.

    Each stream cycles through freshly generated series (random realistic
    situation settings, as the paper's calibration/test treatment), raising
    ``new_series`` on the first frame of every series -- the signal the
    tracking substrate would emit when a new physical sign enters view.

    Parameters
    ----------
    feature_model:
        The study's embedding model (produces the DDM inputs).
    n_streams / n_ticks:
        Workload shape: every stream contributes one frame per tick.
    rng:
        Randomness source for series generation and embeddings.
    generator:
        Series source; a default :class:`GTSRBLikeGenerator` when omitted.
    settings_per_series:
        Situation augmentations per base series.
    priority_classes:
        QoS priority classes dealt round-robin over the streams
        (stream ``s`` gets class ``s % priority_classes``); class 0 is
        the most important.  1 (the default) leaves every frame at the
        engine-default priority, which admission-free runs ignore
        entirely.
    """
    if n_streams < 1:
        raise ValidationError(f"n_streams must be >= 1, got {n_streams}")
    if n_ticks < 1:
        raise ValidationError(f"n_ticks must be >= 1, got {n_ticks}")
    if priority_classes < 1:
        raise ValidationError(
            f"priority_classes must be >= 1, got {priority_classes}"
        )
    generator = generator or GTSRBLikeGenerator()

    # Generate enough augmented series to cover n_streams * n_ticks frames,
    # then deal them out stream by stream.
    frames_needed = n_streams * n_ticks
    mean_frames = sum(generator.frames_per_series) / 2
    n_base = int(np.ceil(frames_needed / (mean_frames * settings_per_series))) + n_streams
    base = generator.generate_base(n_base, rng)
    dataset = generator.augment_with_situations(base, settings_per_series, rng)

    series_pool = iter(dataset.series)
    per_stream: list[list[StreamFrame]] = []
    for stream_id in range(n_streams):
        frames: list[StreamFrame] = []
        while len(frames) < n_ticks:
            try:
                series = next(series_pool)
            except StopIteration:  # pool underestimated; generate more
                extra = generator.augment_with_situations(
                    generator.generate_base(n_streams, rng), settings_per_series, rng
                )
                series_pool = iter(extra.series)
                series = next(series_pool)
            embeddings = feature_model.embed_series(series, rng)
            for t in range(series.n_frames):
                frames.append(
                    StreamFrame(
                        stream_id=stream_id,
                        model_input=embeddings[t],
                        stateless_quality_values=series.sensed[t],
                        new_series=(t == 0),
                        priority=stream_id % priority_classes,
                    )
                )
        per_stream.append(frames[:n_ticks])

    ticks = [
        [per_stream[s][t] for s in range(n_streams)] for t in range(n_ticks)
    ]
    return StreamWorkload(ticks=ticks, n_streams=n_streams)


def replay_engine(
    engine: StreamingEngine, workload: StreamWorkload
) -> dict[object, list[TimeseriesWrappedOutcome]]:
    """Run the workload through ``step_batch``, outcomes grouped per stream.

    Driven by a policy-free :class:`ServingController` -- the single tick
    loop every serving path shares -- which is bitwise-identical to
    calling ``engine.step_batch`` tick by tick.
    """
    return {
        stream_id: [result.outcome for result in results]
        for stream_id, results in replay_results(engine, workload).items()
    }


def replay_results(engine, workload: StreamWorkload) -> dict[object, list]:
    """Run the workload, keeping the *full* results per stream.

    Like :func:`replay_engine` but retains each :class:`StreamStepResult`
    (monitor verdicts included) instead of just the outcome -- the shape
    the cluster equivalence checks compare, and transport-agnostic: any
    object with ``step_batch`` (a :class:`StreamingEngine` or a
    :class:`~repro.serving.cluster.ShardedEngine` on any transport) fits.
    The tick loop is the control plane's (policy-free), so every replay
    exercises the same driver the CLI and benchmarks use; the engine is
    left open (the caller owns its lifecycle).
    """
    with ServingController(engine, owns_engine=False) as controller:
        return controller.run(workload.ticks)


def replay_naive(
    wrapper_factory, workload: StreamWorkload
) -> dict[object, list[TimeseriesWrappedOutcome]]:
    """Replay the workload through one wrapper ``step`` call per frame.

    The baseline the streaming engine is measured against: per-stream
    :class:`TimeseriesAwareUncertaintyWrapper` instances stepped
    sequentially in the same interleaved tick order.

    Parameters
    ----------
    wrapper_factory:
        Zero-argument callable building one fresh wrapper per stream.
    workload:
        The same workload fed to :func:`replay_engine`.
    """
    wrappers: dict[object, TimeseriesAwareUncertaintyWrapper] = {}
    outcomes: dict[object, list[TimeseriesWrappedOutcome]] = {}
    for frames in workload.ticks:
        for frame in frames:
            wrapper = wrappers.get(frame.stream_id)
            if wrapper is None:
                wrapper = wrappers[frame.stream_id] = wrapper_factory()
            outcome = wrapper.step(
                frame.model_input,
                frame.stateless_quality_values,
                new_series=frame.new_series,
            )
            outcomes.setdefault(frame.stream_id, []).append(outcome)
    return outcomes
