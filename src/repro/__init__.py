"""repro: timeseries-aware uncertainty wrappers for information-fusion-enhanced ML.

A from-scratch reproduction of "Timeseries-aware Uncertainty Wrappers for
Uncertainty Quantification of Information-Fusion-Enhanced AI Models based on
Machine Learning" (Gross, Klaes, Joeckel, Gerber; VERDI @ DSN 2023), including
every substrate the study depends on: a GTSRB-like timeseries data
generator, quality-deficit augmentation, numpy classifiers, CART decision
trees, binomial guarantee bounds, Brier-score decomposition, Kalman-filter
tracking, and the full evaluation harness.

Quick start::

    from repro import StudyConfig, run_study, render_table1

    results = run_study(StudyConfig.smoke_scale())
    print(render_table1(results))

See README.md for the architecture overview, the serving-engine API, and
the install/benchmark instructions.
"""

from repro.core import (
    QualityFactorLayout,
    QualityImpactModel,
    ScopeComplianceModel,
    TimeseriesAwareUncertaintyWrapper,
    TimeseriesBuffer,
    TimeseriesWrappedOutcome,
    UncertaintyWrapper,
    WrappedOutcome,
    trace_series,
)
from repro.evaluation import (
    StudyConfig,
    StudyResults,
    evaluate_study,
    feature_importance_study,
    prepare_study_data,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_study_summary,
    render_table1,
    run_study,
)
from repro.fusion import (
    MajorityVote,
    NaiveProductFusion,
    OpportuneFusion,
    WorstCaseFusion,
)
from repro.serving import (
    RegistrySnapshot,
    ShardedEngine,
    StreamFrame,
    StreamRegistry,
    StreamStepResult,
    StreamingEngine,
)

__version__ = "1.0.0"

__all__ = [
    "QualityFactorLayout",
    "QualityImpactModel",
    "ScopeComplianceModel",
    "TimeseriesAwareUncertaintyWrapper",
    "TimeseriesBuffer",
    "TimeseriesWrappedOutcome",
    "UncertaintyWrapper",
    "WrappedOutcome",
    "trace_series",
    "StudyConfig",
    "StudyResults",
    "evaluate_study",
    "feature_importance_study",
    "prepare_study_data",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_study_summary",
    "render_table1",
    "run_study",
    "MajorityVote",
    "NaiveProductFusion",
    "OpportuneFusion",
    "WorstCaseFusion",
    "RegistrySnapshot",
    "ShardedEngine",
    "StreamFrame",
    "StreamRegistry",
    "StreamStepResult",
    "StreamingEngine",
    "__version__",
]
