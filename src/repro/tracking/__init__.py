"""Tracking substrate: Kalman filtering and series-onset detection."""

from repro.tracking.kalman import KalmanFilter, constant_velocity_filter
from repro.tracking.tracker import SignTracker, TrackEvent

__all__ = ["KalmanFilter", "constant_velocity_filter", "SignTracker", "TrackEvent"]
