"""Linear Kalman filter.

The paper's architecture relies on a tracking component (citing road-sign
tracking work based on Kalman filtering) to decide when a *new* timeseries
starts -- i.e. when the observed detections stop belonging to the same
physical traffic sign, at which point the taUW buffer must be cleared.  This
module provides a standard linear Kalman filter plus a convenience
constructor for the constant-velocity point-tracking model the tracker uses.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["KalmanFilter", "constant_velocity_filter"]


class KalmanFilter:
    """Textbook linear-Gaussian Kalman filter.

    State evolves as ``x' = F x + w`` with ``w ~ N(0, Q)``; measurements are
    ``z = H x + v`` with ``v ~ N(0, R)``.

    Parameters
    ----------
    F, H, Q, R:
        Transition, measurement, process-noise, and measurement-noise
        matrices.
    x0, P0:
        Initial state mean and covariance.
    """

    def __init__(self, F, H, Q, R, x0, P0) -> None:
        self.F = np.asarray(F, dtype=float)
        self.H = np.asarray(H, dtype=float)
        self.Q = np.asarray(Q, dtype=float)
        self.R = np.asarray(R, dtype=float)
        self.x = np.asarray(x0, dtype=float).ravel()
        self.P = np.asarray(P0, dtype=float)
        n = self.x.size
        if self.F.shape != (n, n):
            raise ValidationError(f"F must be {n}x{n}, got {self.F.shape}")
        if self.Q.shape != (n, n):
            raise ValidationError(f"Q must be {n}x{n}, got {self.Q.shape}")
        if self.P.shape != (n, n):
            raise ValidationError(f"P0 must be {n}x{n}, got {self.P.shape}")
        m = self.H.shape[0]
        if self.H.shape != (m, n):
            raise ValidationError(f"H must be m x {n}, got {self.H.shape}")
        if self.R.shape != (m, m):
            raise ValidationError(f"R must be {m}x{m}, got {self.R.shape}")

    def predict(self) -> np.ndarray:
        """Propagate the state one step; returns the predicted state mean."""
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        return self.x

    def innovation(self, z) -> tuple[np.ndarray, np.ndarray]:
        """Return the innovation ``y = z - H x`` and its covariance ``S``."""
        z = np.asarray(z, dtype=float).ravel()
        if z.size != self.H.shape[0]:
            raise ValidationError(
                f"measurement must have {self.H.shape[0]} entries, got {z.size}"
            )
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        return y, S

    def mahalanobis_squared(self, z) -> float:
        """Squared Mahalanobis distance of measurement ``z`` (gating test)."""
        y, S = self.innovation(z)
        return float(y @ np.linalg.solve(S, y))

    def update(self, z) -> np.ndarray:
        """Fold measurement ``z`` into the state; returns the posterior mean."""
        y, S = self.innovation(z)
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ y
        identity = np.eye(self.P.shape[0])
        # Joseph form for numerical symmetry/positive-definiteness.
        A = identity - K @ self.H
        self.P = A @ self.P @ A.T + K @ self.R @ K.T
        return self.x


def constant_velocity_filter(
    initial_position,
    dt: float = 0.1,
    process_noise: float = 0.5,
    measurement_noise: float = 0.3,
    initial_speed_std: float = 25.0,
) -> KalmanFilter:
    """Build a 2-D constant-velocity filter tracking ``(x, y)`` positions.

    State is ``(x, y, vx, vy)``; only positions are measured.

    Parameters
    ----------
    initial_position:
        Starting ``(x, y)``.
    dt:
        Time step between frames.
    process_noise:
        Acceleration noise intensity (white-noise-acceleration model).
    measurement_noise:
        Standard deviation of position measurements.
    initial_speed_std:
        Prior standard deviation of the unknown initial velocity.  Must
        cover plausible relative speeds (a vehicle approaches signs at up
        to ~40 m/s), otherwise the second detection of a legitimate track
        falls outside the gate and every series fragments.
    """
    p = np.asarray(initial_position, dtype=float).ravel()
    if p.size != 2:
        raise ValidationError(f"initial_position must be (x, y), got {p!r}")
    F = np.array(
        [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    H = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])
    q = process_noise
    # White-noise acceleration discretisation.
    G = np.array([[0.5 * dt * dt, 0.0], [0.0, 0.5 * dt * dt], [dt, 0.0], [0.0, dt]])
    Q = G @ G.T * q * q
    R = np.eye(2) * measurement_noise**2
    x0 = np.array([p[0], p[1], 0.0, 0.0])
    v_var = initial_speed_std**2
    P0 = np.diag([1.0, 1.0, v_var, v_var])
    return KalmanFilter(F, H, Q, R, x0, P0)
