"""Sign tracker: decides when a new timeseries begins.

"The tracking component detects a new timeseries whenever the location of
the detected object changes, i.e., the predictions might relate to a
different traffic sign and thus also have a different ground truth."

The tracker maintains one constant-velocity Kalman track for the sign
currently being approached; each incoming detection is gated by its
Mahalanobis distance.  A detection outside the gate starts a new track --
and thereby signals the timeseries-aware wrapper to clear its buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from repro.exceptions import ValidationError
from repro.tracking.kalman import KalmanFilter, constant_velocity_filter

__all__ = ["TrackEvent", "SignTracker"]


@dataclass(frozen=True)
class TrackEvent:
    """Result of feeding one detection to the tracker.

    Attributes
    ----------
    new_series:
        True when the detection started a new track (buffer must be reset).
    track_id:
        Identifier of the track the detection was associated with.
    distance_squared:
        Squared Mahalanobis gating distance of the detection against the
        previous track (``nan`` for the very first detection).
    """

    new_series: bool
    track_id: int
    distance_squared: float


class SignTracker:
    """Single-object tracker with chi-square gating.

    Parameters
    ----------
    gate_probability:
        Detections whose Mahalanobis distance exceeds the chi-square
        quantile at this probability (2 degrees of freedom) are declared a
        *new* sign.
    dt:
        Frame interval handed to the constant-velocity model.
    process_noise / measurement_noise:
        Kalman noise parameters (see
        :func:`repro.tracking.kalman.constant_velocity_filter`).
    """

    def __init__(
        self,
        gate_probability: float = 0.99,
        dt: float = 0.1,
        process_noise: float = 1.5,
        measurement_noise: float = 0.3,
    ) -> None:
        if not 0.0 < gate_probability < 1.0:
            raise ValidationError(
                f"gate_probability must be in (0, 1), got {gate_probability}"
            )
        self.gate_threshold = float(_sps.chi2.ppf(gate_probability, df=2))
        self.dt = dt
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self._filter: KalmanFilter | None = None
        self._track_id = -1

    @property
    def current_track_id(self) -> int:
        """Identifier of the active track (-1 before the first detection)."""
        return self._track_id

    def reset(self) -> None:
        """Drop the current track (e.g. after the sign left the frame)."""
        self._filter = None

    def update(self, position) -> TrackEvent:
        """Feed one detection; returns whether it begins a new series."""
        position = np.asarray(position, dtype=float).ravel()
        if position.size != 2:
            raise ValidationError(f"position must be (x, y), got {position!r}")

        if self._filter is None:
            self._start_track(position)
            return TrackEvent(
                new_series=True, track_id=self._track_id, distance_squared=float("nan")
            )

        self._filter.predict()
        d2 = self._filter.mahalanobis_squared(position)
        if d2 > self.gate_threshold:
            self._start_track(position)
            return TrackEvent(new_series=True, track_id=self._track_id, distance_squared=d2)
        self._filter.update(position)
        return TrackEvent(new_series=False, track_id=self._track_id, distance_squared=d2)

    def _start_track(self, position: np.ndarray) -> None:
        self._filter = constant_velocity_filter(
            position,
            dt=self.dt,
            process_noise=self.process_noise,
            measurement_noise=self.measurement_noise,
        )
        self._track_id += 1
