"""The data-driven-model (DDM) abstraction and adapters.

The uncertainty wrapper treats the wrapped model as a black box: the only
requirement is a ``predict`` method mapping a batch of model inputs to class
labels.  This module defines that protocol, an adapter for our numpy
classifiers, and a configurable synthetic DDM whose error process is known in
closed form -- invaluable for unit-testing the wrapper stack without any
training.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.datasets.gtsrb import CONFUSION_PARTNERS
from repro.exceptions import ValidationError

__all__ = [
    "DataDrivenModel",
    "ClassifierDDM",
    "SyntheticDDM",
    "synthetic_correlated_series",
]


@runtime_checkable
class DataDrivenModel(Protocol):
    """Anything with a batch ``predict``: the wrapper needs nothing more."""

    def predict(self, X) -> np.ndarray:  # pragma: no cover - protocol stub
        """Map a batch of model inputs to predicted class labels."""
        ...


class ClassifierDDM:
    """Adapter presenting a fitted classifier as a black-box DDM.

    Exists mostly for symmetry and documentation: our classifiers already
    satisfy :class:`DataDrivenModel`, but wrapping them makes the black-box
    boundary explicit and lets callers attach a human-readable name.
    """

    def __init__(self, classifier, name: str = "classifier-ddm") -> None:
        if not hasattr(classifier, "predict"):
            raise ValidationError("classifier must expose a predict() method")
        self.classifier = classifier
        self.name = name

    def predict(self, X) -> np.ndarray:
        """Delegate to the wrapped classifier."""
        return np.asarray(self.classifier.predict(X))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassifierDDM(name={self.name!r})"


class SyntheticDDM:
    """A DDM with an exactly known, controllable error process.

    Instead of consuming embeddings, this model consumes rows of
    ``(true_class, error_probability, series_noise)`` and misclassifies with
    exactly ``error_probability``, directing errors to the class's confusion
    partner.  ``series_noise`` in ``[0, 1)`` is a per-series uniform draw
    shared by all frames of a series: comparing it against the error
    probability produces *perfectly correlated* within-series errors, the
    worst case for naive uncertainty fusion.

    Parameters
    ----------
    correlated:
        When True, the shared ``series_noise`` column decides errors
        (within-series correlation 1); when False, an internal rng draws
        per-frame noise (independent errors).
    seed:
        Seed of the internal rng (only used when ``correlated=False``).
    """

    #: Column indices of the expected input layout.
    COL_TRUE_CLASS = 0
    COL_ERROR_PROBABILITY = 1
    COL_SERIES_NOISE = 2

    def __init__(self, correlated: bool = True, seed: int = 0) -> None:
        self.correlated = correlated
        self._rng = np.random.default_rng(seed)

    def predict(self, X) -> np.ndarray:
        """Return labels, flipping to the confusion partner on error."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] < 3:
            raise ValidationError(
                "SyntheticDDM expects rows (true_class, error_probability, "
                f"series_noise); got shape {X.shape}"
            )
        true_class = X[:, self.COL_TRUE_CLASS].astype(np.int64)
        p_err = X[:, self.COL_ERROR_PROBABILITY]
        if np.any((p_err < 0) | (p_err > 1)):
            raise ValidationError("error probabilities must lie in [0, 1]")
        if self.correlated:
            noise = X[:, self.COL_SERIES_NOISE]
        else:
            noise = self._rng.uniform(size=X.shape[0])
        wrong = noise < p_err
        partners = np.array(
            [CONFUSION_PARTNERS.get(int(c), int(c)) for c in true_class],
            dtype=np.int64,
        )
        return np.where(wrong, partners, true_class)


def synthetic_correlated_series(
    rng: np.random.Generator,
    n_series: int = 120,
    length: int = 10,
    correlation: float = 0.6,
) -> list[tuple[np.ndarray, np.ndarray, int]]:
    """Series of :class:`SyntheticDDM` inputs with correlated in-series errors.

    Per series: one truth, per-frame error probabilities (doubling as the
    stateless quality factor), and per-frame noise draws sharing a
    Gaussian-copula factor -- so errors within a series are strongly but
    not perfectly correlated, the dependence structure the taUW addresses.
    (Perfect correlation would make the fused outcome identical to the
    isolated one, leaving the timeseries-aware factors nothing to
    explain.)  The wrapper/engine test suites and examples all draw their
    synthetic workloads from this one generator.

    Returns
    -------
    list
        ``(model_inputs, quality, truth)`` per series, where
        ``model_inputs`` has the `SyntheticDDM` row layout
        ``(true_class, error_probability, series_noise)`` and ``quality``
        is the ``(length, 1)`` stateless quality-factor column.
    """
    from scipy.stats import norm

    if n_series < 0:
        raise ValidationError(f"n_series must be >= 0, got {n_series}")
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    if not 0.0 <= correlation <= 1.0:
        raise ValidationError(f"correlation must lie in [0, 1], got {correlation}")

    series = []
    rho = np.sqrt(correlation)
    for _ in range(n_series):
        truth = int(rng.integers(0, 10))
        base = float(np.where(rng.uniform() < 0.5, 0.08, 0.45))
        # Per-frame variation (as real deficits vary within a series):
        # frames with lower error probability get lower stateless u, which
        # is what makes the cumulative-certainty factor informative.
        p_err = np.clip(base + rng.uniform(-0.25, 0.25, size=length), 0.01, 0.95)
        z_series = rng.normal()
        z_frames = rng.normal(size=length)
        noise = norm.cdf(rho * z_series + np.sqrt(1 - rho * rho) * z_frames)
        model_inputs = np.column_stack(
            [np.full(length, truth), p_err, noise]
        ).astype(float)
        series.append((model_inputs, p_err[:, None], truth))
    return series
