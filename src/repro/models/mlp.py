"""Multi-layer perceptron classifier on numpy.

This is the study's stand-in for the paper's CNN: a small fully-connected
network with ReLU activations and a softmax head, trained with mini-batch
Adam on cross-entropy.  The uncertainty wrapper treats it as a black box
(only ``predict`` is consumed), matching the paper's outside-model stance.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.models.linear import one_hot, softmax

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Fully-connected classifier with ReLU hidden layers.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(64, 32)``.
    learning_rate:
        Adam step size.
    epochs:
        Passes over the training data.
    batch_size:
        Mini-batch size.
    l2:
        L2 penalty on all weight matrices.
    seed:
        Seed for initialisation and shuffling.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (64, 32),
        learning_rate: float = 1e-3,
        epochs: int = 25,
        batch_size: int = 256,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ValidationError(
                f"hidden_sizes must be a non-empty tuple of positive ints, got {hidden_sizes}"
            )
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        if epochs < 1:
            raise ValidationError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._fitted = False

    # ------------------------------------------------------------------
    def _init_params(self, d_in: int, d_out: int, rng: np.random.Generator):
        sizes = (d_in, *self.hidden_sizes, d_out)
        weights = []
        biases = []
        last = len(sizes) - 2
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            if i == last:
                # Near-zero output layer: initial logits stay small, so the
                # initial loss is ~log(k) regardless of input scale.
                scale = 0.01
            else:
                scale = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return weights, biases

    def fit(self, X, y) -> "MLPClassifier":
        """Train on features ``X`` and integer labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValidationError("y must be 1-dimensional and aligned with X")
        if X.shape[0] == 0:
            raise ValidationError("cannot fit on an empty dataset")

        self.classes_, codes = np.unique(y, return_inverse=True)
        n, d = X.shape
        k = self.classes_.size
        rng = np.random.default_rng(self.seed)
        self.weights_, self.biases_ = self._init_params(d, k, rng)

        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        targets = one_hot(codes, k)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, tb = X[idx], targets[idx]
                activations, logits = self._forward_partial(xb)
                probs = softmax(logits)
                delta = (probs - tb) / idx.size

                grads_w = []
                grads_b = []
                for layer in range(len(self.weights_) - 1, -1, -1):
                    a_prev = activations[layer]
                    grads_w.append(a_prev.T @ delta + self.l2 * self.weights_[layer])
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            activations[layer] > 0.0
                        )
                grads_w.reverse()
                grads_b.reverse()

                step += 1
                lr_t = self.learning_rate * np.sqrt(1 - beta2**step) / (1 - beta1**step)
                for i in range(len(self.weights_)):
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    self.weights_[i] -= lr_t * m_w[i] / (np.sqrt(v_w[i]) + eps)
                    self.biases_[i] -= lr_t * m_b[i] / (np.sqrt(v_b[i]) + eps)

        self._fitted = True
        return self

    def _forward_partial(self, X: np.ndarray):
        """Forward pass returning (activations per layer, logits).

        Usable during fit (weights exist but ``_fitted`` is still unset).
        """
        activations = [X]
        h = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            h = np.maximum(h @ W + b, 0.0)
            activations.append(h)
        logits = h @ self.weights_[-1] + self.biases_[-1]
        return activations, logits

    # ------------------------------------------------------------------
    def _check(self, X) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("MLPClassifier is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        d = self.weights_[0].shape[0]
        if X.ndim != 2 or X.shape[1] != d:
            raise ValidationError(f"X must have shape (n, {d}), got {X.shape}")
        return X

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities per row."""
        X = self._check(X)
        _, logits = self._forward_partial(X)
        return softmax(logits)

    def predict(self, X) -> np.ndarray:
        """Most probable class label per row."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy on the given data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
