"""DDM substrate: embeddings plus numpy classifiers standing in for the CNN."""

from repro.models.ddm import ClassifierDDM, DataDrivenModel, SyntheticDDM
from repro.models.features import FeatureConfig, PrototypeFeatureModel
from repro.models.linear import SoftmaxRegression, one_hot, softmax
from repro.models.mlp import MLPClassifier

__all__ = [
    "ClassifierDDM",
    "DataDrivenModel",
    "SyntheticDDM",
    "FeatureConfig",
    "PrototypeFeatureModel",
    "SoftmaxRegression",
    "one_hot",
    "softmax",
    "MLPClassifier",
]
