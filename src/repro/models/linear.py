"""Multinomial logistic regression (softmax classifier) on numpy.

A light-weight alternative head for the DDM substrate; also used in tests
where training an MLP would be wasteful.  Optimised with mini-batch Adam on
the cross-entropy loss with optional L2 regularisation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError

__all__ = ["SoftmaxRegression", "softmax", "one_hot"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def one_hot(y_codes: np.ndarray, n_classes: int) -> np.ndarray:
    """Return one-hot encoding of integer codes, shape ``(n, n_classes)``."""
    y_codes = np.asarray(y_codes)
    if y_codes.ndim != 1:
        raise ValidationError(f"y_codes must be 1-dimensional, got {y_codes.shape}")
    if y_codes.size and (y_codes.min() < 0 or y_codes.max() >= n_classes):
        raise ValidationError("y_codes out of range for n_classes")
    out = np.zeros((y_codes.size, n_classes), dtype=float)
    out[np.arange(y_codes.size), y_codes] = 1.0
    return out


class SoftmaxRegression:
    """Multinomial logistic regression trained with mini-batch Adam.

    Parameters
    ----------
    learning_rate:
        Adam step size.
    epochs:
        Number of passes over the training data.
    batch_size:
        Mini-batch size.
    l2:
        L2 penalty on the weight matrix (not the bias).
    seed:
        Seed for shuffling and initialisation.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        epochs: int = 30,
        batch_size: int = 256,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {learning_rate}")
        if epochs < 1:
            raise ValidationError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._fitted = False

    def fit(self, X, y) -> "SoftmaxRegression":
        """Train on features ``X`` and integer labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValidationError("y must be 1-dimensional and aligned with X")
        if X.shape[0] == 0:
            raise ValidationError("cannot fit on an empty dataset")

        self.classes_, codes = np.unique(y, return_inverse=True)
        n, d = X.shape
        k = self.classes_.size
        rng = np.random.default_rng(self.seed)
        W = rng.normal(0.0, 0.01, size=(d, k))
        b = np.zeros(k)

        m_w = np.zeros_like(W)
        v_w = np.zeros_like(W)
        m_b = np.zeros_like(b)
        v_b = np.zeros_like(b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        targets = one_hot(codes, k)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, tb = X[idx], targets[idx]
                probs = softmax(xb @ W + b)
                grad_logits = (probs - tb) / idx.size
                g_w = xb.T @ grad_logits + self.l2 * W
                g_b = grad_logits.sum(axis=0)
                step += 1
                m_w = beta1 * m_w + (1 - beta1) * g_w
                v_w = beta2 * v_w + (1 - beta2) * g_w**2
                m_b = beta1 * m_b + (1 - beta1) * g_b
                v_b = beta2 * v_b + (1 - beta2) * g_b**2
                lr_t = self.learning_rate * np.sqrt(1 - beta2**step) / (1 - beta1**step)
                W -= lr_t * m_w / (np.sqrt(v_w) + eps)
                b -= lr_t * m_b / (np.sqrt(v_b) + eps)

        self.weights_ = W
        self.bias_ = b
        self._fitted = True
        return self

    def _check(self, X) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("SoftmaxRegression is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.weights_.shape[0]:
            raise ValidationError(
                f"X must have shape (n, {self.weights_.shape[0]}), got {X.shape}"
            )
        return X

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities per row."""
        X = self._check(X)
        return softmax(X @ self.weights_ + self.bias_)

    def predict(self, X) -> np.ndarray:
        """Most probable class label per row."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy on the given data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
