"""Synthetic image embeddings: what the wrapped classifier actually sees.

The paper's DDM is a CNN consuming augmented GTSRB images.  Offline we
replace the pixel pipeline with an embedding model that preserves the error
process the uncertainty wrapper studies:

* every class has a fixed prototype direction in feature space;
* the *visibility* of a frame -- driven by apparent sign size and the nine
  deficit intensities -- scales how much of the prototype survives;
* as visibility drops, the embedding is pulled towards the prototype of the
  class's confusion partner (same visual family), which makes
  misclassifications systematic rather than uniformly random;
* a per-series disturbance vector (same sticker, same viewpoint, same
  weather for all frames of a series) correlates errors *within* a series --
  the dependence that breaks the naive uncertainty-fusion assumption.

A classifier trained on these embeddings exhibits exactly the behaviour the
paper reports: high accuracy on clean large signs, degraded and strongly
series-correlated errors under deficits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.augmentation import DEFICIT_NAMES, N_DEFICITS
from repro.datasets.gtsrb import CONFUSION_PARTNERS, SignSeries
from repro.exceptions import ValidationError

__all__ = ["FeatureConfig", "PrototypeFeatureModel"]


@dataclass(frozen=True)
class FeatureConfig:
    """Parameters of the embedding model.

    Attributes
    ----------
    dim:
        Embedding dimensionality.
    size_half_px:
        Apparent size (pixels) at which size-driven visibility reaches 0.5.
    noise_base:
        Isotropic noise *vector norm* at perfect visibility (the
        per-dimension standard deviation is this divided by ``sqrt(dim)``,
        so the value is directly comparable to the unit-norm prototypes).
    noise_scale:
        Additional noise norm proportional to ``1 - visibility``.
    confusion_strength:
        How strongly low visibility pulls the embedding towards the
        confusion partner's prototype.
    series_effect_scale:
        Magnitude of the shared per-series disturbance at zero visibility.
    normalize:
        L2-normalise embeddings (CNN-feature-like illumination invariance;
        keeps train and test inputs on a comparable scale).
    deficit_weights:
        Relative impact of each deficit on visibility (ordered like
        :data:`repro.datasets.augmentation.DEFICIT_NAMES`).
    """

    dim: int = 32
    size_half_px: float = 5.0
    noise_base: float = 0.17
    noise_scale: float = 0.52
    confusion_strength: float = 0.40
    series_effect_scale: float = 0.40
    normalize: bool = True
    deficit_weights: tuple[float, ...] = (
        0.20,  # rain
        0.35,  # darkness
        0.30,  # haze
        0.22,  # backlight_natural
        0.15,  # backlight_artificial
        0.20,  # dirt_sign
        0.18,  # dirt_lens
        0.30,  # steamed_lens
        0.28,  # motion_blur
    )

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise ValidationError(f"dim must be >= 2, got {self.dim}")
        if len(self.deficit_weights) != N_DEFICITS:
            raise ValidationError(
                f"deficit_weights needs {N_DEFICITS} entries "
                f"(order {DEFICIT_NAMES}), got {len(self.deficit_weights)}"
            )


class PrototypeFeatureModel:
    """Maps frames of a series to embedding vectors.

    Parameters
    ----------
    n_classes:
        Number of sign classes (fixes the prototype bank).
    config:
        Embedding parameters.
    seed:
        Seed for the prototype bank.  Prototypes are a deterministic
        function of the seed so that train/calibration/test embeddings are
        consistent.
    """

    def __init__(
        self,
        n_classes: int,
        config: FeatureConfig | None = None,
        seed: int = 7,
    ) -> None:
        if n_classes < 2:
            raise ValidationError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = n_classes
        self.config = config or FeatureConfig()
        proto_rng = np.random.default_rng(seed)
        prototypes = proto_rng.normal(size=(n_classes, self.config.dim))
        prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
        self.prototypes = prototypes
        self._weights = np.asarray(self.config.deficit_weights, dtype=float)

    # ------------------------------------------------------------------
    def visibility(self, sizes_px: np.ndarray, deficits: np.ndarray) -> np.ndarray:
        """Per-frame visibility in ``(0, 1)``.

        Size contributes a saturating factor
        ``size / (size + size_half_px)``; deficits multiply in as
        ``prod(1 - w_d * intensity_d)``.
        """
        sizes_px = np.asarray(sizes_px, dtype=float)
        deficits = np.asarray(deficits, dtype=float)
        size_factor = sizes_px / (sizes_px + self.config.size_half_px)
        deficit_factor = np.prod(1.0 - self._weights[None, :] * deficits, axis=1)
        return np.clip(size_factor * deficit_factor, 1e-4, 1.0)

    def embed_series(self, series: SignSeries, rng: np.random.Generator) -> np.ndarray:
        """Return embeddings of shape ``(n_frames, dim)`` for one series."""
        cfg = self.config
        if series.class_id >= self.n_classes:
            raise ValidationError(
                f"series class_id {series.class_id} outside the model's "
                f"{self.n_classes} classes"
            )
        v = self.visibility(series.sizes_px, series.deficits)[:, None]
        proto = self.prototypes[series.class_id][None, :]
        partner_id = CONFUSION_PARTNERS.get(series.class_id, series.class_id)
        partner = self.prototypes[partner_id][None, :]

        # Shared per-series disturbance: one random direction for the whole
        # series, active in proportion to the visibility loss of each frame.
        series_noise = rng.normal(0.0, 1.0, size=(1, cfg.dim))
        series_noise /= np.linalg.norm(series_noise)

        mix = cfg.confusion_strength * (1.0 - v)
        signal = (1.0 - mix) * proto + mix * partner
        # noise_* parameters are vector norms; convert to per-dimension sd.
        noise_sd = (cfg.noise_base + cfg.noise_scale * (1.0 - v)) / np.sqrt(cfg.dim)
        frame_noise = rng.normal(0.0, 1.0, size=(series.n_frames, cfg.dim)) * noise_sd
        shared = cfg.series_effect_scale * (1.0 - v) * series_noise
        embeddings = v * signal + shared + frame_noise
        if cfg.normalize:
            norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
            embeddings = embeddings / np.maximum(norms, 1e-9)
        return embeddings

    def embed_dataset(
        self, dataset, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Embed every frame of every series of a dataset.

        Returns
        -------
        tuple
            ``(X, y, series_index)`` where ``X`` stacks all frame
            embeddings, ``y`` holds the ground-truth class per frame, and
            ``series_index`` maps each frame row back to its position in
            ``dataset.series``.
        """
        blocks: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        series_idx: list[np.ndarray] = []
        for i, series in enumerate(dataset):
            emb = self.embed_series(series, rng)
            blocks.append(emb)
            labels.append(np.full(series.n_frames, series.class_id, dtype=np.int64))
            series_idx.append(np.full(series.n_frames, i, dtype=np.int64))
        if not blocks:
            return (
                np.empty((0, self.config.dim)),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return np.vstack(blocks), np.concatenate(labels), np.concatenate(series_idx)
