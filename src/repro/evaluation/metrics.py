"""Study metrics: misclassification by timestep and pooled evaluation tables.

These helpers turn lists of :class:`repro.core.timeseries_wrapper.SeriesTrace`
into the quantities the paper reports: per-timestep misclassification rates
(Fig. 4), pooled failure indicators and uncertainty series for the Brier
evaluation (Table I), and the per-case uncertainty distributions (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timeseries_wrapper import SeriesTrace
from repro.exceptions import ValidationError

__all__ = [
    "MisclassificationByTimestep",
    "misclassification_by_timestep",
    "pool_traces",
    "PooledCases",
]


@dataclass(frozen=True)
class MisclassificationByTimestep:
    """Per-timestep misclassification rates (the paper's Fig. 4 series).

    Attributes
    ----------
    timesteps:
        One-based timestep positions.
    isolated:
        Misclassification rate of the momentaneous DDM outcome per step.
    fused:
        Misclassification rate of the information-fused outcome per step.
    n_series:
        Number of series contributing to each step.
    """

    timesteps: np.ndarray
    isolated: np.ndarray
    fused: np.ndarray
    n_series: np.ndarray

    @property
    def isolated_mean(self) -> float:
        """DDM misclassification rate pooled over all steps."""
        weights = self.n_series / self.n_series.sum()
        return float(np.sum(weights * self.isolated))

    @property
    def fused_mean(self) -> float:
        """Fused misclassification rate pooled over all steps."""
        weights = self.n_series / self.n_series.sum()
        return float(np.sum(weights * self.fused))

    @property
    def fused_final(self) -> float:
        """Fused misclassification rate at the last timestep."""
        return float(self.fused[-1])


def misclassification_by_timestep(
    traces: list[SeriesTrace],
) -> MisclassificationByTimestep:
    """Aggregate isolated and fused error rates per series position."""
    if not traces:
        raise ValidationError("need at least one trace")
    max_len = max(t.n_steps for t in traces)
    err_isolated = np.zeros(max_len)
    err_fused = np.zeros(max_len)
    counts = np.zeros(max_len)
    for trace in traces:
        n = trace.n_steps
        err_isolated[:n] += trace.isolated_wrong()
        err_fused[:n] += trace.fused_wrong()
        counts[:n] += 1
    return MisclassificationByTimestep(
        timesteps=np.arange(1, max_len + 1),
        isolated=err_isolated / counts,
        fused=err_fused / counts,
        n_series=counts.astype(np.int64),
    )


@dataclass(frozen=True)
class PooledCases:
    """All (series, timestep) cases of a trace list, flattened.

    Attributes
    ----------
    series_index:
        Index into the originating trace list per case.
    timestep:
        Zero-based position within the series per case.
    isolated_wrong / fused_wrong:
        Binary failure indicators per case.
    isolated_uncertainty:
        The stateless wrapper's momentaneous estimate per case.
    features:
        taQIM feature rows per case (layout order of the trace builder).
    """

    series_index: np.ndarray
    timestep: np.ndarray
    isolated_wrong: np.ndarray
    fused_wrong: np.ndarray
    isolated_uncertainty: np.ndarray
    features: np.ndarray

    @property
    def n_cases(self) -> int:
        return int(self.series_index.size)

    def per_series_uncertainty_prefixes(self) -> list[np.ndarray]:
        """Momentaneous uncertainty arrays grouped back by series.

        Used by the uncertainty-fusion baselines, which fold the prefix
        ``u_0..u_i`` of each series into a joint estimate per step.
        """
        groups: list[np.ndarray] = []
        for sid in np.unique(self.series_index):
            mask = self.series_index == sid
            order = np.argsort(self.timestep[mask])
            groups.append(self.isolated_uncertainty[mask][order])
        return groups


def pool_traces(traces: list[SeriesTrace]) -> PooledCases:
    """Flatten traces into one pooled case table (evaluation input)."""
    if not traces:
        raise ValidationError("need at least one trace")
    series_index = []
    timestep = []
    for i, trace in enumerate(traces):
        series_index.append(np.full(trace.n_steps, i, dtype=np.int64))
        timestep.append(np.arange(trace.n_steps, dtype=np.int64))
    return PooledCases(
        series_index=np.concatenate(series_index),
        timestep=np.concatenate(timestep),
        isolated_wrong=np.concatenate([t.isolated_wrong() for t in traces]),
        fused_wrong=np.concatenate([t.fused_wrong() for t in traces]),
        isolated_uncertainty=np.concatenate([t.uncertainties for t in traces]),
        features=np.vstack([t.features for t in traces]),
    )
