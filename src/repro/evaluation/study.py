"""End-to-end study pipeline (paper Fig. 3).

``prepare_study_data`` executes the full chain: generate GTSRB-like series,
split train/calibration/test, augment (training: single-deficit intensity
grid; calibration/test: random realistic situations + length-10
subsampling), embed frames, train the DDM, build and calibrate the stateless
quality impact model, replay every series into traces, and build and
calibrate the timeseries-aware QIM.

``evaluate_study`` then scores every approach of the paper's Table I on the
test traces and assembles the data behind Figs. 4-6.  The feature-importance
sweep (Fig. 7) lives in :mod:`repro.evaluation.importance`.

Scale: the default configuration is laptop-sized (a couple of minutes end to
end); ``StudyConfig.paper_scale()`` reproduces the paper's series counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.quality_factors import QualityFactorLayout, TAQF_NAMES
from repro.core.quality_impact import QualityImpactModel
from repro.core.timeseries_wrapper import SeriesTrace, stack_traces, trace_series
from repro.datasets.augmentation import SensorModel, single_deficit_grid
from repro.datasets.gtsrb import GTSRBLikeGenerator, N_CLASSES, TimeseriesDataset
from repro.datasets.splits import subsample_dataset
from repro.exceptions import ValidationError
from repro.evaluation.metrics import (
    MisclassificationByTimestep,
    misclassification_by_timestep,
    pool_traces,
)
from repro.fusion.information import MajorityVote
from repro.fusion.uncertainty import (
    NaiveProductFusion,
    OpportuneFusion,
    WorstCaseFusion,
)
from repro.models.features import FeatureConfig, PrototypeFeatureModel
from repro.models.linear import SoftmaxRegression
from repro.models.mlp import MLPClassifier
from repro.stats.brier import BrierDecomposition, murphy_decomposition
from repro.stats.calibration import CalibrationCurve, quantile_calibration_curve

__all__ = [
    "StudyConfig",
    "StudyData",
    "ApproachResult",
    "UncertaintyDistributionSummary",
    "StudyResults",
    "APPROACH_STATELESS",
    "APPROACH_IF_NO_UF",
    "APPROACH_NAIVE",
    "APPROACH_WORST_CASE",
    "APPROACH_OPPORTUNE",
    "APPROACH_TAUW",
    "prepare_study_data",
    "evaluate_study",
    "run_study",
]

APPROACH_STATELESS = "Stateless UW (no IF + no UF)"
APPROACH_IF_NO_UF = "(Fused) IF + no UF"
APPROACH_NAIVE = "IF + Naive UF"
APPROACH_WORST_CASE = "IF + Worst-case UF"
APPROACH_OPPORTUNE = "IF + Opportune UF"
APPROACH_TAUW = "IF + taUW"


@dataclass(frozen=True)
class StudyConfig:
    """All knobs of the reproduction study.

    The defaults run the whole pipeline in a couple of minutes on a laptop;
    :meth:`paper_scale` restores the paper's dataset sizes.

    Attributes
    ----------
    n_series:
        Number of base GTSRB-like series (paper: 1307).
    frames_per_series:
        Inclusive range of frames per base series (paper: 29-30).
    split_fractions:
        Train/calibration/test series fractions (paper: 522/392/392).
    eval_settings_per_series:
        Situation settings per calibration/test series (paper: 28).
    subsample_length:
        Length of the calibration/test sub-series windows (paper: 10).
    tree_max_depth:
        Depth limit of the quality impact models (paper: 8).
    min_calibration_samples:
        Minimum calibration cases per leaf (paper: 200).
    confidence:
        Confidence level of the per-leaf bounds (paper: 0.999).
    taqf_names:
        The timeseries-aware factors available to the taQIM.
    ddm_kind:
        ``"mlp"`` (paper-like black box) or ``"softmax"`` (faster).
    ddm_epochs / ddm_hidden / ddm_learning_rate:
        Training parameters of the DDM.
    feature_config:
        Embedding-model parameters (controls the DDM's error process).
    seed:
        Master seed for data generation, training, and subsampling.
    """

    n_series: int = 300
    frames_per_series: tuple[int, int] = (29, 30)
    split_fractions: tuple[float, float, float] = (0.4, 0.3, 0.3)
    eval_settings_per_series: int = 8
    subsample_length: int = 10
    tree_max_depth: int = 8
    min_calibration_samples: int = 200
    confidence: float = 0.999
    taqf_names: tuple[str, ...] = TAQF_NAMES
    ddm_kind: str = "mlp"
    ddm_epochs: int = 15
    ddm_hidden: tuple[int, ...] = (64,)
    ddm_learning_rate: float = 1e-3
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_series < 10:
            raise ValidationError(f"n_series must be >= 10, got {self.n_series}")
        if self.eval_settings_per_series < 1:
            raise ValidationError(
                "eval_settings_per_series must be >= 1, got "
                f"{self.eval_settings_per_series}"
            )
        if self.subsample_length < 1:
            raise ValidationError(
                f"subsample_length must be >= 1, got {self.subsample_length}"
            )
        if self.ddm_kind not in ("mlp", "softmax"):
            raise ValidationError(
                f"ddm_kind must be 'mlp' or 'softmax', got {self.ddm_kind!r}"
            )

    @classmethod
    def paper_scale(cls) -> "StudyConfig":
        """The paper's dataset sizes (minutes-long run; opt-in)."""
        return cls(n_series=1307, eval_settings_per_series=28)

    @classmethod
    def smoke_scale(cls) -> "StudyConfig":
        """Small configuration for fast tests.

        ``n_series=110`` keeps the training split just above the 43-class
        coverage threshold so the DDM sees every class at least once.
        """
        return cls(
            n_series=110,
            eval_settings_per_series=3,
            min_calibration_samples=30,
            ddm_kind="softmax",
            ddm_epochs=8,
        )


@dataclass
class StudyData:
    """Intermediate artifacts shared by evaluation, benchmarks, and examples."""

    config: StudyConfig
    layout: QualityFactorLayout
    ddm: object
    feature_model: PrototypeFeatureModel
    stateless_qim: QualityImpactModel
    ta_qim: QualityImpactModel
    train_traces: list[SeriesTrace]
    calibration_traces: list[SeriesTrace]
    test_traces: list[SeriesTrace]
    ddm_accuracy_train: float
    ddm_accuracy_test: float


@dataclass(frozen=True)
class ApproachResult:
    """Scores of one uncertainty-estimation approach on the test set."""

    name: str
    uncertainties: np.ndarray
    wrong: np.ndarray
    decomposition: BrierDecomposition

    def calibration_curve(self, n_bins: int = 10) -> CalibrationCurve:
        """Quantile calibration curve (certainty vs correctness, Fig. 6)."""
        return quantile_calibration_curve(
            1.0 - self.uncertainties, 1.0 - self.wrong, n_bins=n_bins
        )


@dataclass(frozen=True)
class UncertaintyDistributionSummary:
    """Distribution of predicted uncertainties (the paper's Fig. 5 panels)."""

    name: str
    uncertainties: np.ndarray
    min_guaranteed: float

    @property
    def share_at_min(self) -> float:
        """Fraction of cases that received the lowest guaranteeable value."""
        return float(np.mean(np.isclose(self.uncertainties, self.min_guaranteed)))

    def histogram(self, bins: int = 30) -> tuple[np.ndarray, np.ndarray]:
        """Histogram counts/edges over the predicted uncertainties."""
        return np.histogram(self.uncertainties, bins=bins, range=(0.0, 1.0))


@dataclass
class StudyResults:
    """Everything the paper's evaluation section reports."""

    config: StudyConfig
    ddm_accuracy_test: float
    misclassification: MisclassificationByTimestep
    approaches: list[ApproachResult]
    distributions: dict[str, UncertaintyDistributionSummary]

    def approach(self, name: str) -> ApproachResult:
        """Look up one Table I row by approach name."""
        for result in self.approaches:
            if result.name == name:
                return result
        raise ValidationError(f"unknown approach {name!r}")

    def calibration_curves(self, n_bins: int = 10) -> dict[str, CalibrationCurve]:
        """Fig. 6: quantile calibration curves for every approach."""
        return {
            r.name: r.calibration_curve(n_bins=n_bins) for r in self.approaches
        }


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------

def _build_ddm(config: StudyConfig):
    if config.ddm_kind == "mlp":
        return MLPClassifier(
            hidden_sizes=config.ddm_hidden,
            learning_rate=config.ddm_learning_rate,
            epochs=config.ddm_epochs,
            seed=config.seed,
        )
    return SoftmaxRegression(epochs=config.ddm_epochs, seed=config.seed)


def _quality_matrix(dataset: TimeseriesDataset) -> np.ndarray:
    """Stack the sensed quality signals of every frame, series order."""
    return np.vstack([series.sensed for series in dataset])


def _build_traces(
    dataset: TimeseriesDataset,
    predictions: np.ndarray,
    uncertainties: np.ndarray,
    layout: QualityFactorLayout,
) -> list[SeriesTrace]:
    """Cut the flat prediction/uncertainty arrays back into series traces."""
    traces = []
    fusion = MajorityVote()
    offset = 0
    for series in dataset:
        n = series.n_frames
        traces.append(
            trace_series(
                predictions[offset : offset + n],
                uncertainties[offset : offset + n],
                series.sensed,
                truth=series.class_id,
                layout=layout,
                information_fusion=fusion,
            )
        )
        offset += n
    if offset != predictions.shape[0]:
        raise ValidationError("predictions do not align with the dataset frames")
    return traces


def prepare_study_data(config: StudyConfig | None = None) -> StudyData:
    """Run the full data/DDM/wrapper construction pipeline.

    Returns a :class:`StudyData` bundle that :func:`evaluate_study`, the
    importance sweep, and the benchmarks all reuse.
    """
    config = config or StudyConfig()
    rng = np.random.default_rng(config.seed)
    generator = GTSRBLikeGenerator(frames_per_series=config.frames_per_series)

    # 1. Base series per split (paper: 522/392/392 of 1307, split
    #    series-wise).  The training split guarantees class coverage, as
    #    the real GTSRB training set does; drawing the three synthetic
    #    splits independently is distributionally equivalent to splitting
    #    one pool.
    n_train = int(round(config.split_fractions[0] * config.n_series))
    n_cal = int(round(config.split_fractions[1] * config.n_series))
    n_test = config.n_series - n_train - n_cal
    min_per_class = (
        max(1, n_train // (4 * N_CLASSES)) if n_train >= N_CLASSES else 0
    )
    train_base = generator.generate_base(n_train, rng, min_per_class=min_per_class)
    cal_base = generator.generate_base(n_cal, rng, start_id=n_train)
    test_base = generator.generate_base(n_test, rng, start_id=n_train + n_cal)

    # 2. Augmentation: training gets the single-deficit intensity grid;
    #    calibration/test get random realistic situations, then length-10
    #    subsampling with random window starts.
    train_aug = generator.augment_with_grid(train_base, single_deficit_grid(), rng)
    cal_aug = generator.augment_with_situations(
        cal_base, config.eval_settings_per_series, rng
    )
    test_aug = generator.augment_with_situations(
        test_base, config.eval_settings_per_series, rng
    )
    cal_sub = subsample_dataset(cal_aug, config.subsample_length, rng)
    test_sub = subsample_dataset(test_aug, config.subsample_length, rng)

    # 3. Embeddings and DDM training (timeseries-agnostic, as in the paper).
    feature_model = PrototypeFeatureModel(
        N_CLASSES, config.feature_config, seed=config.seed + 1
    )
    X_train, y_train, _ = feature_model.embed_dataset(train_aug, rng)
    X_cal, y_cal, _ = feature_model.embed_dataset(cal_sub, rng)
    X_test, y_test, _ = feature_model.embed_dataset(test_sub, rng)

    ddm = _build_ddm(config)
    ddm.fit(X_train, y_train)
    pred_train = np.asarray(ddm.predict(X_train))
    pred_cal = np.asarray(ddm.predict(X_cal))
    pred_test = np.asarray(ddm.predict(X_test))

    # 4. Stateless quality impact model: fit on training failures,
    #    calibrate on the held-out subsampled calibration set.
    qf_train = _quality_matrix(train_aug)
    qf_cal = _quality_matrix(cal_sub)
    stateless_qim = QualityImpactModel(
        max_depth=config.tree_max_depth,
        min_calibration_samples=config.min_calibration_samples,
        confidence=config.confidence,
    )
    stateless_qim.fit(qf_train, (pred_train != y_train).astype(int))
    stateless_qim.calibrate(qf_cal, (pred_cal != y_cal).astype(int))

    # 5. Momentaneous uncertainties everywhere, then series traces.
    u_train = stateless_qim.estimate_uncertainty(qf_train)
    u_cal = stateless_qim.estimate_uncertainty(qf_cal)
    u_test = stateless_qim.estimate_uncertainty(_quality_matrix(test_sub))

    layout = QualityFactorLayout(SensorModel.SIGNAL_NAMES, config.taqf_names)
    train_traces = _build_traces(train_aug, pred_train, u_train, layout)
    cal_traces = _build_traces(cal_sub, pred_cal, u_cal, layout)
    test_traces = _build_traces(test_sub, pred_test, u_test, layout)

    # 6. Timeseries-aware QIM: same procedure on the fused-outcome failures.
    ta_qim = QualityImpactModel(
        max_depth=config.tree_max_depth,
        min_calibration_samples=config.min_calibration_samples,
        confidence=config.confidence,
    )
    ta_qim.fit(*stack_traces(train_traces))
    ta_qim.calibrate(*stack_traces(cal_traces))

    return StudyData(
        config=config,
        layout=layout,
        ddm=ddm,
        feature_model=feature_model,
        stateless_qim=stateless_qim,
        ta_qim=ta_qim,
        train_traces=train_traces,
        calibration_traces=cal_traces,
        test_traces=test_traces,
        ddm_accuracy_train=float(np.mean(pred_train == y_train)),
        ddm_accuracy_test=float(np.mean(pred_test == y_test)),
    )


def evaluate_study(data: StudyData) -> StudyResults:
    """Score all six Table I approaches on the test traces."""
    pooled = pool_traces(data.test_traces)
    traces = data.test_traces

    naive = NaiveProductFusion()
    opportune = OpportuneFusion()
    worst = WorstCaseFusion()
    u_naive = np.concatenate([naive.fuse_prefixes(t.uncertainties) for t in traces])
    u_opportune = np.concatenate(
        [opportune.fuse_prefixes(t.uncertainties) for t in traces]
    )
    u_worst = np.concatenate([worst.fuse_prefixes(t.uncertainties) for t in traces])
    u_ta = data.ta_qim.estimate_uncertainty(pooled.features)

    def result(name: str, u: np.ndarray, wrong: np.ndarray) -> ApproachResult:
        return ApproachResult(
            name=name,
            uncertainties=np.asarray(u, dtype=float),
            wrong=np.asarray(wrong, dtype=np.int64),
            decomposition=murphy_decomposition(u, wrong),
        )

    approaches = [
        result(APPROACH_STATELESS, pooled.isolated_uncertainty, pooled.isolated_wrong),
        result(APPROACH_IF_NO_UF, pooled.isolated_uncertainty, pooled.fused_wrong),
        result(APPROACH_NAIVE, u_naive, pooled.fused_wrong),
        result(APPROACH_WORST_CASE, u_worst, pooled.fused_wrong),
        result(APPROACH_OPPORTUNE, u_opportune, pooled.fused_wrong),
        result(APPROACH_TAUW, u_ta, pooled.fused_wrong),
    ]

    distributions = {
        "stateless": UncertaintyDistributionSummary(
            name="Stateless UW",
            uncertainties=pooled.isolated_uncertainty,
            min_guaranteed=data.stateless_qim.min_guaranteed_uncertainty,
        ),
        "taUW": UncertaintyDistributionSummary(
            name="taUW + IF",
            uncertainties=np.asarray(u_ta, dtype=float),
            min_guaranteed=data.ta_qim.min_guaranteed_uncertainty,
        ),
    }

    return StudyResults(
        config=data.config,
        ddm_accuracy_test=data.ddm_accuracy_test,
        misclassification=misclassification_by_timestep(traces),
        approaches=approaches,
        distributions=distributions,
    )


def run_study(config: StudyConfig | None = None) -> StudyResults:
    """Convenience: :func:`prepare_study_data` followed by :func:`evaluate_study`."""
    return evaluate_study(prepare_study_data(config))
