"""Feature-importance study over the timeseries-aware quality factors.

RQ3 / Fig. 7 of the paper: retrain and recalibrate the taQIM with every
subset of {ratio, length, size, certainty} (15 non-empty subsets, plus the
stateless-only baseline) and compare the resulting Brier scores on the test
set.  Because the trace feature tables already contain every factor as a
column, each subset run just selects columns -- no series replay is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.quality_impact import QualityImpactModel
from repro.core.timeseries_wrapper import stack_traces
from repro.evaluation.metrics import pool_traces
from repro.evaluation.study import StudyData
from repro.exceptions import ValidationError
from repro.stats.brier import BrierDecomposition, murphy_decomposition

__all__ = ["ImportanceRow", "taqf_subsets", "feature_importance_study"]


@dataclass(frozen=True)
class ImportanceRow:
    """Result of one taQF subset run.

    Attributes
    ----------
    subset:
        The timeseries-aware factors used (empty = stateless features only,
        retrained against the fused-outcome failures).
    brier:
        Brier score of the resulting uncertainty estimates on the test set.
    decomposition:
        Full Murphy decomposition for deeper comparisons.
    """

    subset: tuple[str, ...]
    brier: float
    decomposition: BrierDecomposition

    @property
    def n_factors(self) -> int:
        return len(self.subset)

    def label(self) -> str:
        """Human-readable subset label (``"-"`` for the empty subset)."""
        return "+".join(self.subset) if self.subset else "-"


def taqf_subsets(names: tuple[str, ...], include_empty: bool = True):
    """All subsets of the given factor names, ordered by size then position."""
    sizes = range(0 if include_empty else 1, len(names) + 1)
    for size in sizes:
        yield from combinations(names, size)


def feature_importance_study(
    data: StudyData, include_empty: bool = True
) -> list[ImportanceRow]:
    """Run the Fig. 7 sweep on prepared study data.

    For every factor subset a fresh taQIM is fitted on the training traces,
    calibrated on the calibration traces, and scored on the test traces --
    exactly the study's procedure, restricted to the selected columns.
    """
    layout = data.layout
    if not layout.taqf_names:
        raise ValidationError(
            "the study data was prepared without timeseries-aware factors"
        )
    n_stateless = len(layout.stateless_names)
    stateless_cols = list(range(n_stateless))
    ta_col = {
        name: n_stateless + i for i, name in enumerate(layout.taqf_names)
    }

    X_train, y_train = stack_traces(data.train_traces)
    X_cal, y_cal = stack_traces(data.calibration_traces)
    pooled_test = pool_traces(data.test_traces)
    X_test = pooled_test.features
    y_test = pooled_test.fused_wrong

    config = data.config
    rows: list[ImportanceRow] = []
    for subset in taqf_subsets(layout.taqf_names, include_empty=include_empty):
        cols = stateless_cols + [ta_col[name] for name in subset]
        qim = QualityImpactModel(
            max_depth=config.tree_max_depth,
            min_calibration_samples=config.min_calibration_samples,
            confidence=config.confidence,
        )
        qim.fit(X_train[:, cols], y_train)
        qim.calibrate(X_cal[:, cols], y_cal)
        u = qim.estimate_uncertainty(X_test[:, cols])
        decomposition = murphy_decomposition(u, y_test)
        rows.append(
            ImportanceRow(
                subset=tuple(subset),
                brier=decomposition.brier,
                decomposition=decomposition,
            )
        )
    return rows
