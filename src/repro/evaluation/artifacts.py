"""Persistence of study results: JSON/CSV artifacts for downstream analysis.

A reproduction is only useful if its numbers can leave the Python process:
this module serialises :class:`repro.evaluation.study.StudyResults` (and
the Fig. 7 importance rows) to JSON and CSV, and loads the JSON back into
plain dictionaries for regression comparisons across runs.
"""

from __future__ import annotations

import json
import pathlib

from repro.evaluation.importance import ImportanceRow
from repro.evaluation.study import StudyResults
from repro.exceptions import ValidationError

__all__ = [
    "results_to_dict",
    "importance_to_rows",
    "save_results_json",
    "load_results_json",
    "save_table1_csv",
    "save_fig4_csv",
    "save_importance_csv",
]


def results_to_dict(results: StudyResults) -> dict:
    """Flatten study results into a JSON-serialisable dictionary."""
    misclassification = results.misclassification
    return {
        "config": {
            "n_series": results.config.n_series,
            "eval_settings_per_series": results.config.eval_settings_per_series,
            "subsample_length": results.config.subsample_length,
            "tree_max_depth": results.config.tree_max_depth,
            "min_calibration_samples": results.config.min_calibration_samples,
            "confidence": results.config.confidence,
            "ddm_kind": results.config.ddm_kind,
            "seed": results.config.seed,
        },
        "ddm_accuracy_test": results.ddm_accuracy_test,
        "misclassification": {
            "timesteps": misclassification.timesteps.tolist(),
            "isolated": misclassification.isolated.tolist(),
            "fused": misclassification.fused.tolist(),
            "n_series": misclassification.n_series.tolist(),
        },
        "approaches": [
            {"name": a.name, **a.decomposition.as_dict()}
            for a in results.approaches
        ],
        "distributions": {
            key: {
                "name": dist.name,
                "min_guaranteed": dist.min_guaranteed,
                "share_at_min": dist.share_at_min,
                "n_cases": int(dist.uncertainties.size),
            }
            for key, dist in results.distributions.items()
        },
    }


def importance_to_rows(rows: list[ImportanceRow]) -> list[dict]:
    """Flatten Fig. 7 rows into JSON-serialisable dictionaries."""
    return [
        {
            "subset": list(row.subset),
            "label": row.label(),
            "n_factors": row.n_factors,
            "brier": row.brier,
        }
        for row in rows
    ]


def save_results_json(results: StudyResults, path) -> pathlib.Path:
    """Write the flattened results to ``path`` as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results_to_dict(results), indent=2))
    return path


def load_results_json(path) -> dict:
    """Load a results JSON written by :func:`save_results_json`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no results file at {path}")
    return json.loads(path.read_text())


def _write_csv(path, header: list[str], rows: list[list]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def save_table1_csv(results: StudyResults, path) -> pathlib.Path:
    """Write Table I (one row per approach) as CSV."""
    header = [
        "approach",
        "brier",
        "variance",
        "unspecificity",
        "unreliability",
        "overconfidence",
        "underconfidence",
        "resolution",
    ]
    rows = []
    for a in results.approaches:
        d = a.decomposition
        rows.append(
            [
                a.name,
                d.brier,
                d.variance,
                d.unspecificity,
                d.unreliability,
                d.overconfidence,
                d.underconfidence,
                d.resolution,
            ]
        )
    return _write_csv(path, header, rows)


def save_fig4_csv(results: StudyResults, path) -> pathlib.Path:
    """Write the Fig. 4 series (per-timestep error rates) as CSV."""
    m = results.misclassification
    header = ["timestep", "isolated", "fused", "n_series"]
    rows = [
        [int(t), float(i), float(f), int(n)]
        for t, i, f, n in zip(m.timesteps, m.isolated, m.fused, m.n_series)
    ]
    return _write_csv(path, header, rows)


def save_importance_csv(rows: list[ImportanceRow], path) -> pathlib.Path:
    """Write the Fig. 7 sweep as CSV."""
    header = ["n_factors", "subset", "brier"]
    csv_rows = [[row.n_factors, row.label(), row.brier] for row in rows]
    return _write_csv(path, header, csv_rows)
