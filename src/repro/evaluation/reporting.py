"""Text rendering of the paper's tables and figures.

No plotting stack is available offline, so every figure is rendered as an
aligned text table (and CSV on request) that prints the same rows/series the
paper plots.  The benchmark harness writes these renderings next to its
timing output.
"""

from __future__ import annotations

from io import StringIO

from repro.evaluation.importance import ImportanceRow
from repro.evaluation.metrics import MisclassificationByTimestep
from repro.evaluation.study import StudyResults
from repro.stats.calibration import CalibrationCurve

__all__ = [
    "render_table1",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_study_summary",
]


def _format_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _table(header: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    out = StringIO()
    out.write(_format_row(header, widths) + "\n")
    out.write(_format_row(["-" * w for w in widths], widths) + "\n")
    for row in rows:
        out.write(_format_row(row, widths) + "\n")
    return out.getvalue()


def render_table1(results: StudyResults) -> str:
    """Table I: Brier score and components for every approach."""
    header = [
        "Approach",
        "Brier",
        "Variance",
        "Unspecificity",
        "Unreliability",
        "Overconfidence",
    ]
    rows = []
    for result in results.approaches:
        d = result.decomposition
        rows.append(
            [
                result.name,
                f"{d.brier:.4f}",
                f"{d.variance:.4f}",
                f"{d.unspecificity:.4f}",
                f"{d.unreliability:.5f}",
                f"{d.overconfidence:.1e}",
            ]
        )
    return "TABLE I - EVALUATION OF DIFFERENT UNCERTAINTY MODELS\n" + _table(
        header, rows
    )


def render_fig4(misclassification: MisclassificationByTimestep) -> str:
    """Fig. 4: misclassification rate per timestep, isolated vs fused."""
    header = ["Timestep", "Isolated DDM", "DDM + IF"]
    rows = [
        [str(int(t)), f"{iso:.4f}", f"{fus:.4f}"]
        for t, iso, fus in zip(
            misclassification.timesteps,
            misclassification.isolated,
            misclassification.fused,
        )
    ]
    summary = (
        f"mean isolated: {misclassification.isolated_mean:.4f}  "
        f"mean fused: {misclassification.fused_mean:.4f}  "
        f"fused @ final step: {misclassification.fused_final:.4f}\n"
    )
    return (
        "Fig. 4 - MISCLASSIFICATION RATE OVER TIMESTEPS\n"
        + _table(header, rows)
        + summary
    )


def render_fig5(results: StudyResults) -> str:
    """Fig. 5: distribution of predicted uncertainty per wrapper."""
    lines = ["Fig. 5 - DISTRIBUTION OF UNCERTAINTY ACROSS CASES"]
    for key in ("stateless", "taUW"):
        dist = results.distributions[key]
        lines.append(
            f"{dist.name}: min guaranteed u = {dist.min_guaranteed:.4f}, "
            f"share of cases at the minimum = {dist.share_at_min:.1%}"
        )
        counts, edges = dist.histogram(bins=20)
        total = counts.sum()
        for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
            if count == 0:
                continue
            bar = "#" * max(1, int(round(40 * count / total)))
            lines.append(f"  u in [{lo:.2f}, {hi:.2f}): {count:>7d} {bar}")
    return "\n".join(lines) + "\n"


def render_fig6(curves: dict[str, CalibrationCurve]) -> str:
    """Fig. 6: calibration plot data (predicted vs observed certainty)."""
    lines = ["Fig. 6 - CALIBRATION OF UNCERTAINTY ESTIMATION MODELS"]
    for name, curve in curves.items():
        lines.append(f"{name}:")
        header = ["Predicted certainty", "Observed correctness", "Cases"]
        rows = [
            [f"{p:.4f}", f"{o:.4f}", str(int(c))]
            for p, o, c in zip(curve.predicted, curve.observed, curve.counts)
        ]
        lines.append(_table(header, rows).rstrip())
    return "\n".join(lines) + "\n"


def render_fig7(rows: list[ImportanceRow]) -> str:
    """Fig. 7: Brier score per taQF subset, grouped by subset size."""
    header = ["#taQF", "Subset", "Brier"]
    table_rows = [
        [str(row.n_factors), row.label(), f"{row.brier:.4f}"]
        for row in sorted(rows, key=lambda r: (r.n_factors, r.label()))
    ]
    return "Fig. 7 - FEATURE IMPORTANCE STUDY\n" + _table(header, table_rows)


def render_study_summary(results: StudyResults) -> str:
    """One-page summary: accuracy, Fig. 4 headline, Table I, Fig. 5 shares."""
    out = StringIO()
    out.write(
        f"DDM accuracy on test frames: {results.ddm_accuracy_test:.4f} "
        f"(misclassification {1 - results.ddm_accuracy_test:.4f})\n\n"
    )
    out.write(render_fig4(results.misclassification))
    out.write("\n")
    out.write(render_table1(results))
    out.write("\n")
    out.write(render_fig5(results))
    return out.getvalue()
