"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``study``
    Run the full reproduction study and print the paper's tables/figures;
    optionally write JSON/CSV artifacts.
``importance``
    Run the Fig. 7 feature-importance sweep.
``dataset``
    Generate a GTSRB-like timeseries dataset and save it as ``.npz``.
``bounds``
    Tabulate the guarantee bounds for a given failure count / sample size
    (handy when sizing calibration sets).
``simulate-streams``
    Replay interleaved GTSRB situation streams through the batched
    :class:`~repro.serving.StreamingEngine` and report the serving
    throughput (optionally against the naive per-stream ``step`` loop).
    ``--shards N`` routes the replay through the multi-process
    :class:`~repro.serving.ShardedEngine`; ``--snapshot-every K`` writes
    periodic registry snapshots.
``serve-cluster``
    Run the sharded serving cluster on a simulated workload: consistent-
    hash placement over N shard workers (``--transport`` picks in-proc,
    forked pipe workers, or TCP to remote ``serve-worker`` processes),
    optional periodic snapshots, restore-from-snapshot, and an
    equivalence check against the single-process engine.

Both serving commands are driven by the
:class:`~repro.serving.ServingController` control plane (workers are
reaped even on mid-run exceptions) and accept its policy flags:
``--latency-budget-ms`` enables QoS admission control,
``--autoscale MIN:MAX`` enables latency-driven shard autoscaling,
``--priority-field``/``--priority-classes`` shape the QoS classes,
``--stats-every N`` prints per-tick telemetry, and
``--max-failovers N``/``--journal-depth K`` enable self-healing worker
failover (respawn + snapshot restore + tick-journal replay on worker
death, bitwise-identical to an uninterrupted run).
``serve-worker``
    Run one TCP shard worker: listens on ``--listen HOST:PORT``, builds
    a fresh engine per cluster connection, and serves the wire protocol
    until the cluster disconnects.  Point ``serve-cluster --transport
    tcp --workers ...`` at any number of these, on any machines.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timeseries-aware uncertainty wrappers (DSN/VERDI 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full reproduction study")
    study.add_argument("--paper-scale", action="store_true",
                       help="use the paper's dataset sizes (slow)")
    study.add_argument("--smoke", action="store_true",
                       help="tiny configuration for a quick look")
    study.add_argument("--seed", type=int, default=42, help="master seed")
    study.add_argument("--json", metavar="PATH",
                       help="write results JSON to PATH")
    study.add_argument("--csv-dir", metavar="DIR",
                       help="write table1.csv and fig4.csv into DIR")

    importance = sub.add_parser(
        "importance", help="run the Fig. 7 taQF importance sweep"
    )
    importance.add_argument("--paper-scale", action="store_true")
    importance.add_argument("--smoke", action="store_true")
    importance.add_argument("--seed", type=int, default=42)
    importance.add_argument("--csv", metavar="PATH",
                            help="write the sweep as CSV to PATH")

    dataset = sub.add_parser(
        "dataset", help="generate and save a GTSRB-like dataset"
    )
    dataset.add_argument("out", help="output .npz path")
    dataset.add_argument("--n-series", type=int, default=100)
    dataset.add_argument("--settings-per-series", type=int, default=1,
                         help="situation augmentations per base series")
    dataset.add_argument("--subsample-length", type=int, default=0,
                         help="cut windows of this length (0 = keep full)")
    dataset.add_argument("--seed", type=int, default=0)

    bounds = sub.add_parser(
        "bounds", help="tabulate guarantee bounds for k failures in n samples"
    )
    bounds.add_argument("failures", type=int)
    bounds.add_argument("samples", type=int)
    bounds.add_argument("--confidence", type=float, default=0.999)

    serve = sub.add_parser(
        "simulate-streams",
        help="replay interleaved object streams through the serving engine",
    )
    serve.add_argument("--streams", type=int, default=256,
                       help="number of concurrent object streams")
    serve.add_argument("--ticks", type=int, default=50,
                       help="number of engine ticks (frames per stream)")
    serve.add_argument("--paper-scale", action="store_true")
    serve.add_argument("--smoke", action="store_true",
                       help="tiny study configuration for a quick look")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--threshold", type=float, default=None,
                       help="per-stream monitor acceptance threshold")
    serve.add_argument("--max-buffer-length", type=int, default=None,
                       help="sliding-window cap per stream buffer")
    serve.add_argument("--ttl", type=int, default=None,
                       help="evict streams idle for this many ticks")
    serve.add_argument("--shards", type=int, default=1,
                       help="worker processes; > 1 serves through the "
                            "sharded cluster engine")
    serve.add_argument("--transport", choices=["pipe", "shm", "inproc"],
                       default="pipe",
                       help="cluster transport when --shards > 1 "
                            "(forked pipe workers, shared-memory rings, "
                            "or in-process loopback)")
    serve.add_argument("--snapshot-every", type=int, default=0, metavar="K",
                       help="write a registry snapshot every K ticks")
    serve.add_argument("--snapshot-dir", default="snapshots", metavar="DIR",
                       help="directory for --snapshot-every artifacts")
    serve.add_argument("--snapshot-mode", choices=["sync", "bg"],
                       default="sync",
                       help="write snapshots on the tick thread (sync) or "
                            "hand serialization + disk I/O to a background "
                            "writer thread (bg)")
    serve.add_argument("--snapshot-deltas", type=int, default=0, metavar="K",
                       help="incremental snapshots: write K per-shard "
                            "delta snapshots between full bases behind an "
                            "atomic manifest.json (0 = full snapshots only)")
    serve.add_argument("--snapshot-retain", type=int, default=0, metavar="N",
                       help="with --snapshot-deltas: keep only the newest "
                            "N superseded base+delta generations on disk "
                            "(0 = keep everything)")
    serve.add_argument("--compare-naive", action="store_true",
                       help="also time the per-stream step loop and "
                            "verify identical outputs")
    serve.add_argument("--json", metavar="PATH",
                       help="write the throughput report JSON to PATH")
    _add_controller_flags(serve)

    cluster = sub.add_parser(
        "serve-cluster",
        help="serve interleaved object streams on the sharded multi-process cluster",
    )
    cluster.add_argument("--streams", type=int, default=1024,
                         help="number of concurrent object streams")
    cluster.add_argument("--ticks", type=int, default=25,
                         help="number of cluster ticks (frames per stream)")
    cluster.add_argument("--shards", type=int, default=4,
                         help="number of shard workers")
    cluster.add_argument("--transport",
                         choices=["pipe", "shm", "inproc", "tcp"],
                         default="pipe",
                         help="worker transport: forked pipe workers "
                              "(default), zero-copy shared-memory rings, "
                              "in-process loopback, or TCP to remote "
                              "serve-worker processes (--workers)")
    cluster.add_argument("--workers", metavar="HOST:PORT[,HOST:PORT...]",
                         help="worker addresses for --transport tcp, one "
                              "per shard in shard order")
    cluster.add_argument("--connect-timeout", type=float, default=120.0,
                         help="seconds to keep retrying TCP worker "
                              "connections (covers worker warm-up)")
    cluster.add_argument("--paper-scale", action="store_true")
    cluster.add_argument("--smoke", action="store_true",
                         help="tiny study configuration for a quick look")
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--threshold", type=float, default=None,
                         help="per-stream monitor acceptance threshold")
    cluster.add_argument("--max-buffer-length", type=int, default=None,
                         help="sliding-window cap per stream buffer")
    cluster.add_argument("--ttl", type=int, default=None,
                         help="evict streams idle for this many ticks")
    cluster.add_argument("--snapshot-every", type=int, default=0, metavar="K",
                         help="write a cluster snapshot every K ticks")
    cluster.add_argument("--snapshot-dir", default="snapshots", metavar="DIR",
                         help="directory for snapshot artifacts")
    cluster.add_argument("--snapshot-mode", choices=["sync", "bg"],
                         default="sync",
                         help="write snapshots on the tick thread (sync) or "
                              "hand serialization + disk I/O to a background "
                              "writer thread (bg)")
    cluster.add_argument("--snapshot-deltas", type=int, default=0,
                         metavar="K",
                         help="incremental snapshots: write K delta "
                              "snapshots between full bases behind an "
                              "atomic manifest.json (0 = full snapshots "
                              "only)")
    cluster.add_argument("--snapshot-retain", type=int, default=0,
                         metavar="N",
                         help="with --snapshot-deltas: keep only the newest "
                              "N superseded base+delta generations on disk "
                              "(0 = keep everything)")
    cluster.add_argument("--restore", metavar="STEM",
                         help="restore registry state from a snapshot stem, "
                              "a snapshot-store directory, or its "
                              "manifest.json (as written by "
                              "--snapshot-every) before serving")
    cluster.add_argument("--compare-single", action="store_true",
                         help="also run the single-process engine and "
                              "verify bitwise-identical outputs")
    cluster.add_argument("--flight-record", metavar="DIR", default=None,
                         help="journal every wire frame to a flight log in "
                              "DIR (replayable with replay-flight)")
    cluster.add_argument("--trace-export", metavar="DIR", default=None,
                         help="assemble per-tick distributed timelines "
                              "(controller + rebased worker spans) and "
                              "write Chrome trace-event JSON to DIR/"
                              "trace.json (open in Perfetto)")
    cluster.add_argument("--json", metavar="PATH",
                         help="write the cluster report JSON to PATH")
    _add_controller_flags(cluster)

    worker = sub.add_parser(
        "serve-worker",
        help="run one TCP shard worker for serve-cluster --transport tcp",
    )
    worker.add_argument("--listen", required=True, metavar="HOST:PORT",
                        help="address to listen on (port 0 = ephemeral)")
    worker.add_argument("--paper-scale", action="store_true")
    worker.add_argument("--smoke", action="store_true",
                        help="tiny study configuration for a quick look")
    worker.add_argument("--seed", type=int, default=42)
    worker.add_argument("--threshold", type=float, default=None,
                        help="per-stream monitor acceptance threshold "
                             "(must match the cluster's)")
    worker.add_argument("--max-buffer-length", type=int, default=None,
                        help="sliding-window cap per stream buffer")
    worker.add_argument("--ttl", type=int, default=None,
                        help="evict streams idle for this many ticks")
    worker.add_argument("--max-connections", type=int, default=0, metavar="N",
                        help="exit after N orderly-closed cluster sessions "
                             "(0 = serve forever; a client that dies "
                             "mid-session does not consume the budget, so "
                             "failover reconnects still land)")
    worker.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve this worker's Prometheus metrics on "
                             "http://127.0.0.1:PORT/metrics (0 = ephemeral "
                             "port, printed at startup)")

    replay = sub.add_parser(
        "replay-flight",
        help="re-drive a recorded flight log and verify bitwise-identical "
             "replies",
    )
    replay.add_argument("log", metavar="DIR",
                        help="flight-log directory (frames.bin + "
                             "manifest.json, as written by serve-cluster "
                             "--flight-record)")
    replay.add_argument("--paper-scale", action="store_true")
    replay.add_argument("--smoke", action="store_true",
                        help="tiny study configuration for a quick look")
    replay.add_argument("--seed", type=int, default=42)
    replay.add_argument("--threshold", type=float, default=None,
                        help="per-stream monitor acceptance threshold "
                             "(must match the recorded run's)")
    replay.add_argument("--max-buffer-length", type=int, default=None,
                        help="sliding-window cap per stream buffer "
                             "(must match the recorded run's)")
    replay.add_argument("--ttl", type=int, default=None,
                        help="evict streams idle for this many ticks "
                             "(must match the recorded run's)")
    replay.add_argument("--json", metavar="PATH",
                        help="write the replay report JSON to PATH")

    export = sub.add_parser(
        "export-trace",
        help="reconstruct per-tick timelines from a recorded flight log "
             "and write Chrome trace-event JSON (open in Perfetto)",
    )
    export.add_argument("log", metavar="DIR",
                        help="flight-log directory (frames.bin + "
                             "manifest.json, as written by serve-cluster "
                             "--flight-record)")
    export.add_argument("--out", metavar="PATH", default="trace.json",
                        help="trace-event JSON output path "
                             "(default: trace.json)")

    return parser


def _add_controller_flags(parser) -> None:
    """Control-plane flags shared by simulate-streams and serve-cluster."""
    group = parser.add_argument_group("control plane (QoS + autoscaling)")
    group.add_argument("--latency-budget-ms", type=float, default=None,
                       metavar="MS",
                       help="per-tick latency budget; enables QoS "
                            "admission control (priority-ordered intake, "
                            "deferred overflow frames) and is the budget "
                            "--autoscale decides against")
    group.add_argument("--autoscale", metavar="MIN:MAX", default=None,
                       help="enable latency-driven autoscaling between "
                            "MIN and MAX shards (requires "
                            "--latency-budget-ms; grows on sustained "
                            "budget misses, shrinks on sustained idle)")
    group.add_argument("--priority-field", default="priority",
                       metavar="NAME",
                       help="StreamFrame attribute holding the QoS "
                            "priority class (smaller = served first; "
                            "default: priority)")
    group.add_argument("--priority-classes", type=int, default=1,
                       metavar="N",
                       help="deal N priority classes round-robin over the "
                            "simulated streams (class = stream %% N)")
    group.add_argument("--stats-every", type=int, default=0, metavar="N",
                       help="print per-tick controller telemetry every N "
                            "ticks (latency EWMA, admitted/deferred "
                            "counts, shard count, fan-out overlap, "
                            "in-flight window depth)")
    group.add_argument("--inflight-window", type=int, default=2, metavar="W",
                       help="bounded in-flight tick window for sharded "
                            "serving: the controller fans out tick t+1 "
                            "while tick t's replies are still streaming "
                            "back, up to W ticks deep (default 2; 1 = "
                            "lockstep, bitwise the pre-pipelining loop)")
    fault = parser.add_argument_group("fault tolerance (worker failover)")
    fault.add_argument("--max-failovers", type=int, default=0, metavar="N",
                       help="recover from up to N worker deaths by "
                            "respawning the shard, restoring the latest "
                            "recovery snapshot, and replaying the tick "
                            "journal (0 = fail fast, the default)")
    fault.add_argument("--journal-depth", type=int, default=None, metavar="K",
                       help="ticks buffered between recovery checkpoints "
                            "(= max replay depth of one recovery; "
                            "default 16, requires --max-failovers)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                     help="serve Prometheus text exposition on "
                          "http://127.0.0.1:PORT/metrics during the run "
                          "(0 = ephemeral port, printed at startup)")
    obs.add_argument("--telemetry-window", type=int, default=4096, metavar="N",
                     help="per-tick telemetry records the controller "
                          "retains (default 4096)")
    obs.add_argument("--slo-p99-ms", type=float, default=None, metavar="MS",
                     help="track a p99 tick-latency SLO with this budget; "
                          "breaches and multi-window error-budget burn "
                          "rates land in the report (and metrics when "
                          "--metrics-port is set)")


def _parse_autoscale(spec: str):
    """Parse ``MIN:MAX`` into an inclusive shard-count range."""
    try:
        low, _, high = spec.partition(":")
        bounds = int(low), int(high)
    except ValueError:
        raise SystemExit(
            f"--autoscale expects MIN:MAX shard counts, got {spec!r}"
        ) from None
    if bounds[0] < 1 or bounds[1] < bounds[0]:
        raise SystemExit(
            f"--autoscale needs 1 <= MIN <= MAX, got {spec!r}"
        )
    return bounds


def _policies_from_args(args):
    """Resolve the control-plane flags into (autoscale, admission, failover)."""
    from repro.serving import AdmissionPolicy, AutoscalePolicy, FailoverPolicy

    budget = None
    if args.latency_budget_ms is not None:
        if args.latency_budget_ms <= 0:
            raise SystemExit("--latency-budget-ms must be > 0")
        budget = args.latency_budget_ms / 1000.0
    autoscale = None
    if args.autoscale is not None:
        if budget is None:
            raise SystemExit("--autoscale requires --latency-budget-ms")
        min_shards, max_shards = _parse_autoscale(args.autoscale)
        autoscale = AutoscalePolicy(
            latency_budget=budget,
            min_shards=min_shards,
            max_shards=max_shards,
        )
    admission = None
    if budget is not None:
        admission = AdmissionPolicy(
            latency_budget=budget, priority_field=args.priority_field
        )
    failover = None
    if args.max_failovers:
        if args.max_failovers < 0:
            raise SystemExit("--max-failovers must be >= 0")
        failover = (
            FailoverPolicy(max_failovers=args.max_failovers)
            if args.journal_depth is None
            else FailoverPolicy(
                max_failovers=args.max_failovers,
                journal_depth=args.journal_depth,
            )
        )
    elif args.journal_depth is not None:
        raise SystemExit("--journal-depth requires --max-failovers")
    return autoscale, admission, failover


def _telemetry_printer(args, cluster=None):
    """The --stats-every N callback: one telemetry line every N ticks."""
    if not args.stats_every:
        return None
    every = args.stats_every
    last_overlap = [0.0]

    def on_tick(t):
        if t.tick % every != 0:
            return
        line = (
            f"tick {t.tick}: latency {t.latency_seconds * 1e3:.1f}ms "
            f"(ewma {t.latency_ewma * 1e3:.1f}ms), "
            f"admitted {t.admitted}/{t.submitted}"
        )
        if t.frame_budget is not None or t.backlog or t.dropped:
            line += (
                f", deferred {t.deferred} (backlog {t.backlog}, "
                f"dropped {t.dropped})"
            )
        line += f", shards {t.n_shards}"
        if t.rebalanced_to is not None:
            line += f" (rebalanced to {t.rebalanced_to})"
        if cluster is not None:
            stats = cluster.fanout_stats()
            overlap = stats["overlap_seconds"]
            line += (
                f", fan-out overlap +{(overlap - last_overlap[0]) * 1e3:.1f}ms"
            )
            last_overlap[0] = overlap
            inflight = stats.get("inflight")
            if inflight is not None and inflight["window"] > 1:
                line += (
                    f", inflight {t.inflight_depth}/{inflight['window']}"
                    f" (peak {inflight['max_depth']})"
                )
        print(line)

    return on_tick


def _prefix_identical(controlled: dict, uncontrolled: dict) -> bool:
    """Compare a controlled run against an uncontrolled replay.

    With admission enabled the controlled run may end with frames still
    deferred, so each stream's outcome sequence must equal a *prefix* of
    the uncontrolled one; without backlog the sequences (and the check)
    collapse to full equality.
    """
    for stream_id, outcomes in controlled.items():
        reference = uncontrolled.get(stream_id, [])
        if outcomes != reference[: len(outcomes)]:
            return False
    return True


def _config_from_args(args):
    from repro.evaluation import StudyConfig

    if getattr(args, "paper_scale", False) and getattr(args, "smoke", False):
        raise SystemExit("--paper-scale and --smoke are mutually exclusive")
    if getattr(args, "paper_scale", False):
        config = StudyConfig.paper_scale()
    elif getattr(args, "smoke", False):
        config = StudyConfig.smoke_scale()
    else:
        config = StudyConfig()
    if args.seed != config.seed:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    return config


def _cmd_study(args) -> int:
    from repro.evaluation import (
        evaluate_study,
        prepare_study_data,
        render_fig6,
        render_study_summary,
        save_fig4_csv,
        save_results_json,
        save_table1_csv,
    )

    config = _config_from_args(args)
    start = time.time()
    data = prepare_study_data(config)
    results = evaluate_study(data)
    print(render_study_summary(results))
    print(render_fig6(results.calibration_curves()))
    print(f"runtime: {time.time() - start:.1f}s")

    if args.json:
        path = save_results_json(results, args.json)
        print(f"wrote {path}")
    if args.csv_dir:
        import pathlib

        directory = pathlib.Path(args.csv_dir)
        print(f"wrote {save_table1_csv(results, directory / 'table1.csv')}")
        print(f"wrote {save_fig4_csv(results, directory / 'fig4.csv')}")
    return 0


def _cmd_importance(args) -> int:
    from repro.evaluation import (
        feature_importance_study,
        prepare_study_data,
        render_fig7,
        save_importance_csv,
    )

    config = _config_from_args(args)
    data = prepare_study_data(config)
    rows = feature_importance_study(data)
    print(render_fig7(rows))
    if args.csv:
        print(f"wrote {save_importance_csv(rows, args.csv)}")
    return 0


def _cmd_dataset(args) -> int:
    from repro.datasets import (
        GTSRBLikeGenerator,
        save_dataset_npz,
        subsample_dataset,
    )

    rng = np.random.default_rng(args.seed)
    generator = GTSRBLikeGenerator()
    base = generator.generate_base(args.n_series, rng)
    dataset = generator.augment_with_situations(
        base, args.settings_per_series, rng
    )
    if args.subsample_length > 0:
        dataset = subsample_dataset(dataset, args.subsample_length, rng)
    path = save_dataset_npz(dataset, args.out)
    print(
        f"wrote {path}: {len(dataset)} series, "
        f"{dataset.n_frames_total} frames, {dataset.n_classes} classes"
    )
    return 0


def _cmd_bounds(args) -> int:
    from repro.stats import (
        clopper_pearson_upper,
        hoeffding_upper,
        jeffreys_upper,
        wilson_upper,
    )

    k, n, confidence = args.failures, args.samples, args.confidence
    print(
        f"Upper bounds on the failure probability for {k} failures in "
        f"{n} samples at one-sided confidence {confidence}:"
    )
    for name, fn in (
        ("clopper-pearson", clopper_pearson_upper),
        ("wilson", wilson_upper),
        ("jeffreys", jeffreys_upper),
        ("hoeffding", hoeffding_upper),
    ):
        print(f"  {name:<16} {fn(k, n, confidence):.6f}")
    print(f"  point estimate   {k / n:.6f}")
    return 0


def _monitor_factory_from_args(args):
    """The per-stream monitor factory implied by ``--threshold`` (or None)."""
    if args.threshold is None:
        return None
    from repro.core.monitor import UncertaintyMonitor

    threshold = args.threshold
    factory = lambda: UncertaintyMonitor(threshold=threshold)  # noqa: E731
    factory()  # fail fast on a bad threshold, before the prep
    return factory


def _engine_factory_from_args(args, data, monitor_factory):
    """One engine factory shared by serve-cluster, serve-worker, and the
    simulate-streams cluster path -- identical flags build identical
    engines, which is what the TCP equivalence guarantee rests on."""
    from repro.serving import StreamingEngine

    def engine_factory():
        return StreamingEngine(
            ddm=data.ddm,
            stateless_qim=data.stateless_qim,
            timeseries_qim=data.ta_qim,
            layout=data.layout,
            max_buffer_length=args.max_buffer_length,
            monitor_factory=monitor_factory,
            idle_ttl=args.ttl,
        )

    return engine_factory


def _metrics_server_from_args(args):
    """Start the opt-in metrics endpoint: ``(registry, server)``.

    ``(None, None)`` without ``--metrics-port``; the caller must close
    the server (its listener thread is a daemon, but an orderly close
    keeps reruns off a lingering port).
    """
    if getattr(args, "metrics_port", None) is None:
        return None, None
    from repro.serving.observability import MetricsRegistry, MetricsServer

    registry = MetricsRegistry()
    server = MetricsServer(registry, port=args.metrics_port)
    print(f"serving metrics at {server.url}", flush=True)
    return registry, server


def _slo_from_args(args):
    """Resolve --slo-p99-ms into an SLOTracker (None when unset)."""
    if getattr(args, "slo_p99_ms", None) is None:
        return None
    from repro.serving.observability import SLO, SLOTracker

    return SLOTracker([SLO("p99_latency", args.slo_p99_ms / 1e3)])


def _print_slo_summary(slo) -> None:
    for name, state in slo.as_dict()["objectives"].items():
        alerts = state["alerts"]
        line = (
            f"slo {name}: {state['breaches']} breach(es) of "
            f"{state['budget_seconds'] * 1e3:.1f}ms budget, burn rate "
            f"short {state['burn_short']:.2f} / long {state['burn_long']:.2f}"
        )
        if sum(alerts.values()):
            line += (
                f", alerts fast={alerts['fast']} slow={alerts['slow']}"
            )
        print(line)


def _transport_from_args(args):
    """Resolve serve-cluster's --transport/--workers into a transport spec."""
    if getattr(args, "transport", "pipe") != "tcp":
        return args.transport
    from repro.serving import TcpTransport

    if not args.workers:
        raise SystemExit(
            "--transport tcp requires --workers HOST:PORT[,HOST:PORT...]"
        )
    transport = TcpTransport(
        args.workers.split(","), connect_timeout=args.connect_timeout
    )
    if len(transport.addresses) < args.shards:
        raise SystemExit(
            f"--shards {args.shards} needs at least that many --workers "
            f"addresses, got {len(transport.addresses)}"
        )
    return transport


def _cmd_simulate_streams(args) -> int:
    from repro.core.timeseries_wrapper import TimeseriesAwareUncertaintyWrapper
    from repro.evaluation import prepare_study_data
    from repro.serving import (
        ServingController,
        ShardedEngine,
        StreamingEngine,
        build_stream_workload,
        replay_engine,
        replay_naive,
    )

    config = _config_from_args(args)
    monitor_factory = _monitor_factory_from_args(args)
    autoscale, admission, failover = _policies_from_args(args)

    print("preparing study pipeline (DDM + calibrated wrappers)...")
    data = prepare_study_data(config)

    rng = np.random.default_rng(args.seed + 1)
    workload = build_stream_workload(
        data.feature_model,
        args.streams,
        args.ticks,
        rng,
        priority_classes=args.priority_classes,
    )

    engine_factory = _engine_factory_from_args(args, data, monitor_factory)
    # Failover needs shard workers to respawn, so it implies the cluster
    # engine even at --shards 1.
    sharded = args.shards > 1 or autoscale is not None or failover is not None
    if sharded:
        initial_shards = args.shards
        if autoscale is not None:
            initial_shards = min(
                max(initial_shards, autoscale.min_shards), autoscale.max_shards
            )
        engine = ShardedEngine(
            engine_factory, initial_shards, transport=args.transport,
            inflight_window=args.inflight_window,
        )
    else:
        engine = engine_factory()

    # The controller owns the tick loop AND the engine lifecycle: a
    # mid-run exception tears the shard workers down instead of leaking
    # them (the context manager closes the engine on every exit path;
    # a failing controller constructor must not leak them either).
    metrics, metrics_server = _metrics_server_from_args(args)
    slo = _slo_from_args(args)
    try:
        controller = ServingController(
            engine,
            autoscale=autoscale,
            admission=admission,
            failover=failover,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir,
            snapshot_mode=args.snapshot_mode,
            snapshot_deltas=args.snapshot_deltas,
            snapshot_retain=args.snapshot_retain,
            owns_engine=sharded,
            on_tick=_telemetry_printer(
                args, cluster=engine if sharded else None
            ),
            telemetry_window=args.telemetry_window,
            metrics=metrics,
            slo=slo,
        )
    except Exception:
        if sharded:
            engine.close()
        if metrics_server is not None:
            metrics_server.close()
        raise
    try:
        with controller:
            start = time.perf_counter()
            per_stream = controller.run(workload.ticks)
            engine_seconds = time.perf_counter() - start
            statistics = (
                engine.statistics() if sharded else engine.registry.statistics
            )
            final_shards = controller.n_shards
    finally:
        if metrics_server is not None:
            metrics_server.close()
    engine_fps = workload.n_frames / engine_seconds
    for stem in controller.snapshots_written:
        print(f"wrote snapshot {stem}.json/.npz")
    if args.snapshot_deltas and controller.snapshots_written:
        print(f"snapshot manifest {args.snapshot_dir}/manifest.json")

    engine_outcomes = {
        stream_id: [result.outcome for result in results]
        for stream_id, results in per_stream.items()
    }
    monitored = accepted = 0
    for results in per_stream.values():
        for result in results:
            if result.verdict is not None:
                monitored += 1
                accepted += result.verdict.accepted

    report = {
        "streams": workload.n_streams,
        "ticks": workload.n_ticks,
        "frames": workload.n_frames,
        "shards": args.shards,
        "transport": args.transport if sharded else "single",
        "engine_seconds": engine_seconds,
        "engine_frames_per_sec": engine_fps,
        "series_started": statistics.series_started,
        "streams_evicted": statistics.evicted,
    }
    if slo is not None:
        report["slo"] = slo.as_dict()
        _print_slo_summary(slo)
    report.update(_controller_report(controller, autoscale, admission, final_shards))
    if sharded and autoscale is not None:
        shards_label = f"{initial_shards}->{final_shards} shards"
    else:
        shards_label = (
            f"{args.shards} shard{'s' if args.shards != 1 else ''}"
        )
    print(
        f"engine ({shards_label}): "
        f"{workload.n_frames} frames over {workload.n_ticks} ticks x "
        f"{workload.n_streams} streams in {engine_seconds:.2f}s "
        f"({engine_fps:,.0f} frames/s)"
    )
    _print_controller_summary(controller, autoscale, admission, final_shards)
    if monitored:
        report["acceptance_rate"] = accepted / monitored
        print(f"monitor: accepted {accepted}/{monitored} frames "
              f"({accepted / monitored:.1%}) at threshold {args.threshold}")

    if args.compare_naive:
        # The speedup figure compares UNMONITORED engine vs naive loop
        # (the naive wrapper loop has no monitors either).  Without a
        # threshold/policies the single-process run above already
        # qualifies; otherwise time a fresh unmonitored single-process
        # replay.  The identity check always judges the MAIN run's
        # outcomes (sharded/monitored/admission-controlled included), so
        # a cluster or controller divergence cannot hide behind the
        # timing replay; with admission the controlled run may end with
        # a deferred backlog, so the check is prefix-wise per stream.
        controlled = admission is not None or autoscale is not None
        if monitor_factory is None and not sharded and not controlled:
            compare_seconds = engine_seconds
        else:
            fresh = StreamingEngine(
                ddm=data.ddm,
                stateless_qim=data.stateless_qim,
                timeseries_qim=data.ta_qim,
                layout=data.layout,
                max_buffer_length=args.max_buffer_length,
            )
            start = time.perf_counter()
            fresh_outcomes = replay_engine(fresh, workload)
            compare_seconds = time.perf_counter() - start
            matches = (
                _prefix_identical(engine_outcomes, fresh_outcomes)
                if admission is not None
                else fresh_outcomes == engine_outcomes
            )
            if not matches:
                print(
                    "error: outputs of the main run diverge from the "
                    "unmonitored single-process replay",
                    file=sys.stderr,
                )
                return 1

        def make_wrapper():
            return TimeseriesAwareUncertaintyWrapper(
                ddm=data.ddm,
                stateless_qim=data.stateless_qim,
                timeseries_qim=data.ta_qim,
                layout=data.layout,
                max_buffer_length=args.max_buffer_length,
            )

        start = time.perf_counter()
        naive_outcomes = replay_naive(make_wrapper, workload)
        naive_seconds = time.perf_counter() - start
        naive_fps = workload.n_frames / naive_seconds
        identical = (
            _prefix_identical(engine_outcomes, naive_outcomes)
            if admission is not None
            else naive_outcomes == engine_outcomes
        )
        report.update(
            naive_seconds=naive_seconds,
            naive_frames_per_sec=naive_fps,
            # The speedup baseline: an unmonitored engine run (equals
            # engine_seconds when no --threshold was given).
            engine_unmonitored_seconds=compare_seconds,
            speedup=naive_seconds / compare_seconds,
            outputs_identical=identical,
        )
        print(
            f"naive per-stream loop: {naive_seconds:.2f}s "
            f"({naive_fps:,.0f} frames/s); speedup "
            f"{naive_seconds / compare_seconds:.1f}x (both unmonitored); "
            f"outputs identical: {identical}"
        )

    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.write_text(json.dumps(report, indent=2))
        print(f"wrote {path}")
    if args.compare_naive and not report["outputs_identical"]:
        print(
            "error: engine outputs diverge from the per-stream wrapper replay",
            file=sys.stderr,
        )
        return 1
    return 0


def _controller_report(controller, autoscale, admission, final_shards) -> dict:
    """Control-plane fields of a CLI report (empty without policies)."""
    failover = controller.failover
    if autoscale is None and admission is None and failover is None:
        return {}
    stats = controller.stats
    report = {"controller": stats.as_dict()}
    if autoscale is not None:
        report["final_shards"] = final_shards
        report["rebalances"] = stats.rebalances
    if admission is not None:
        report["frames_deferred"] = stats.frames_deferred
        report["admission_overflow"] = stats.admission_overflow
        report["deferred_backlog"] = controller.backlog
    if failover is not None:
        report["failovers"] = stats.failovers
        report["shards_respawned"] = stats.shards_respawned
        report["replayed_ticks"] = stats.replayed_ticks
        report["recovery_seconds"] = stats.recovery_seconds
    return report


def _print_controller_summary(controller, autoscale, admission, final_shards):
    stats = controller.stats
    if autoscale is not None:
        print(
            f"autoscale: {stats.rebalances} rebalance(s), "
            f"final shard count {final_shards}"
        )
    if admission is not None:
        print(
            f"admission: {stats.frames_admitted}/{stats.frames_submitted} "
            f"frames admitted, {stats.frames_deferred} deferred "
            f"({controller.backlog} still queued), "
            f"{stats.admission_overflow} dropped (AdmissionOverflow)"
        )
    if controller.failover is not None:
        line = (
            f"failover: {stats.failovers} recover(ies), "
            f"{stats.shards_respawned} worker(s) respawned, "
            f"{stats.replayed_ticks} tick(s) replayed"
        )
        if stats.shard_recoveries:
            line += f" ({stats.shard_recoveries} shard-local)"
        if stats.failovers:
            line += f" in {stats.recovery_seconds * 1e3:.1f}ms"
        print(line)


def _cmd_serve_cluster(args) -> int:
    from repro.evaluation import prepare_study_data
    from repro.serving import (
        ServingController,
        ShardedEngine,
        build_stream_workload,
        load_snapshot,
        replay_engine,
    )

    config = _config_from_args(args)
    monitor_factory = _monitor_factory_from_args(args)
    transport = _transport_from_args(args)
    autoscale, admission, failover = _policies_from_args(args)

    restored = None
    if args.restore:  # fail fast on a bad snapshot too
        restored = load_snapshot(args.restore)

    print("preparing study pipeline (DDM + calibrated wrappers)...")
    data = prepare_study_data(config)
    rng = np.random.default_rng(args.seed + 1)
    workload = build_stream_workload(
        data.feature_model,
        args.streams,
        args.ticks,
        rng,
        priority_classes=args.priority_classes,
    )

    engine_factory = _engine_factory_from_args(args, data, monitor_factory)

    metrics, metrics_server = _metrics_server_from_args(args)
    recorder = None
    if args.flight_record:
        from repro.serving.observability import (
            FlightRecorder,
            FlightRecordingTransport,
        )

        recorder = FlightRecorder(args.flight_record)
        transport = FlightRecordingTransport(transport, recorder)
        print(f"flight-recording wire frames to {recorder.directory}")
    tracer = None
    exporter = None
    if args.trace_export:
        from repro.serving.observability import TickTracer, TraceExporter

        tracer = TickTracer(window=args.telemetry_window)
        exporter = TraceExporter(args.trace_export)
        print(f"exporting distributed traces to {args.trace_export}")
    slo = _slo_from_args(args)

    initial_shards = args.shards
    if autoscale is not None:
        # Start inside the policy's range (simulate-streams does the
        # same): the policy only grows on misses and shrinks above the
        # minimum, so an out-of-range start would never be corrected.
        initial_shards = min(
            max(initial_shards, autoscale.min_shards), autoscale.max_shards
        )
    try:
        print(f"starting {initial_shards} {args.transport} shard worker(s)...")
        cluster = ShardedEngine(
            engine_factory, initial_shards, transport=transport,
            inflight_window=args.inflight_window,
        )
        # The controller owns both the tick loop and the cluster
        # lifecycle: any exception from here on (restore included) reaps
        # the workers -- a failing controller constructor included.
        printer = _telemetry_printer(args, cluster=cluster)
        if exporter is not None:
            def on_tick(record, _printer=printer):
                # on_tick fires after end_tick, so tracer.last is this
                # tick's trace and cluster.last_rpc its worker side.
                exporter.observe(tracer.last, cluster)
                if _printer is not None:
                    _printer(record)
        else:
            on_tick = printer
        try:
            controller = ServingController(
                cluster,
                autoscale=autoscale,
                admission=admission,
                failover=failover,
                snapshot_every=args.snapshot_every,
                snapshot_dir=args.snapshot_dir,
                snapshot_mode=args.snapshot_mode,
                snapshot_deltas=args.snapshot_deltas,
                snapshot_retain=args.snapshot_retain,
                owns_engine=True,
                on_tick=on_tick,
                telemetry_window=args.telemetry_window,
                metrics=metrics,
                tracer=tracer,
                slo=slo,
            )
        except Exception:
            cluster.close()
            raise
        with controller:
            if restored is not None:
                controller.restore(restored)
                print(
                    f"restored {restored.n_streams} streams at tick "
                    f"{restored.tick} from {args.restore}"
                )

            start = time.perf_counter()
            per_stream = controller.run(workload.ticks)
            cluster_seconds = time.perf_counter() - start
            cluster_fps = workload.n_frames / cluster_seconds
            statistics = cluster.statistics()
            fanout = cluster.fanout_stats()
            final_shards = controller.n_shards
    finally:
        # Closed AFTER the cluster (the controller context above) so the
        # workers' goodbye traffic cannot race a closed journal; closed
        # on failure too, so a partial log still gets its manifest.
        if recorder is not None:
            recorder.close()
        if exporter is not None:
            trace_path = exporter.close()
        if metrics_server is not None:
            metrics_server.close()
    if recorder is not None:
        print(
            f"wrote flight log ({recorder.records} records) to "
            f"{recorder.directory}"
        )
    if exporter is not None:
        print(
            f"wrote distributed trace ({len(exporter.timelines)} ticks) to "
            f"{trace_path}"
        )

    cluster_outcomes = {
        stream_id: [result.outcome for result in results]
        for stream_id, results in per_stream.items()
    }
    report = {
        "streams": workload.n_streams,
        "ticks": workload.n_ticks,
        "frames": workload.n_frames,
        "shards": initial_shards,
        "transport": args.transport,
        "cluster_seconds": cluster_seconds,
        "cluster_frames_per_sec": cluster_fps,
        "fanout_encode_seconds": fanout["encode_seconds"],
        "fanout_overlap_seconds": fanout["overlap_seconds"],
        "series_started": statistics.series_started,
        "streams_evicted": statistics.evicted,
        "snapshots_written": list(controller.snapshots_written),
    }
    if "pool" in fanout:
        report["codec_pool"] = fanout["pool"]
    if exporter is not None:
        report["trace_file"] = str(trace_path)
        report["trace_ticks"] = len(exporter.timelines)
        report["worker_phase_seconds"] = {
            str(shard): phases
            for shard, phases in fanout.get("worker_phase_seconds", {}).items()
        }
    if slo is not None:
        report["slo"] = slo.as_dict()
        _print_slo_summary(slo)
    report.update(_controller_report(controller, autoscale, admission, final_shards))
    shards_label = (
        f"{initial_shards}->{final_shards}"
        if autoscale is not None
        else f"{initial_shards}"
    )
    print(
        f"cluster ({shards_label} {args.transport} shards): "
        f"{workload.n_frames} frames over "
        f"{workload.n_ticks} ticks x {workload.n_streams} streams in "
        f"{cluster_seconds:.2f}s ({cluster_fps:,.0f} frames/s; fan-out "
        f"encode {fanout['encode_seconds']:.3f}s, "
        f"{fanout['overlap_seconds']:.3f}s overlapped with worker compute)"
    )
    _print_controller_summary(controller, autoscale, admission, final_shards)
    for stem in controller.snapshots_written:
        print(f"wrote snapshot {stem}.json/.npz")
    if args.snapshot_deltas and controller.snapshots_written:
        print(f"snapshot manifest {args.snapshot_dir}/manifest.json")

    if args.compare_single:
        single = engine_factory()
        if restored is not None:
            single.restore(restored)
        start = time.perf_counter()
        single_outcomes = replay_engine(single, workload)
        single_seconds = time.perf_counter() - start
        # With admission the controlled run may end with a deferred
        # backlog, so each stream's outcomes must be a prefix of the
        # uncontrolled single-process run; without it this is full
        # bitwise equality, exactly as before.
        identical = (
            _prefix_identical(cluster_outcomes, single_outcomes)
            if admission is not None
            else single_outcomes == cluster_outcomes
        )
        report.update(
            single_seconds=single_seconds,
            single_frames_per_sec=workload.n_frames / single_seconds,
            cluster_speedup=single_seconds / cluster_seconds,
            outputs_identical=identical,
        )
        print(
            f"single-process engine: {single_seconds:.2f}s "
            f"({workload.n_frames / single_seconds:,.0f} frames/s); cluster "
            f"speedup {single_seconds / cluster_seconds:.2f}x; "
            f"outputs identical: {identical}"
        )

    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.write_text(json.dumps(report, indent=2))
        print(f"wrote {path}")
    if args.compare_single and not report["outputs_identical"]:
        print(
            "error: cluster outputs diverge from the single-process engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve_worker(args) -> int:
    from repro.evaluation import prepare_study_data
    from repro.serving import serve_worker
    from repro.serving.transport import parse_address

    config = _config_from_args(args)
    monitor_factory = _monitor_factory_from_args(args)
    host, port = parse_address(args.listen)

    print("preparing study pipeline (DDM + calibrated wrappers)...")
    data = prepare_study_data(config)
    engine_factory = _engine_factory_from_args(args, data, monitor_factory)

    def announce(bound_port: int) -> None:
        # Flushed before the first accept so launcher scripts can wait
        # for this line instead of sleeping.
        print(f"worker listening on {host}:{bound_port}", flush=True)

    metrics, metrics_server = _metrics_server_from_args(args)
    try:
        served = serve_worker(
            engine_factory,
            host,
            port,
            max_connections=args.max_connections,
            ready_callback=announce,
            metrics=metrics,
        )
    finally:
        if metrics_server is not None:
            metrics_server.close()
    print(f"served {served} cluster connection(s)")
    return 0


def _cmd_replay_flight(args) -> int:
    from repro.evaluation import prepare_study_data
    from repro.serving.observability import (
        probe_engine_shape,
        read_flight_log,
        replay_flight,
    )

    # Validate the log before the (slow) study preparation.
    manifest, _ = read_flight_log(args.log)
    print(
        f"flight log {args.log}: {manifest['records']} records, "
        f"{manifest['n_shards']} shard(s), transport "
        f"{manifest['transport']}"
    )

    config = _config_from_args(args)
    monitor_factory = _monitor_factory_from_args(args)
    print("preparing study pipeline (DDM + calibrated wrappers)...")
    data = prepare_study_data(config)
    engine_factory = _engine_factory_from_args(args, data, monitor_factory)

    recorded_shape = manifest.get("engine_shape")
    if recorded_shape is not None:
        shape = probe_engine_shape(engine_factory)
        if shape != recorded_shape:
            # The hello replies would catch this too -- as opaque byte
            # mismatches; diffing the config fingerprint names the flag.
            print(
                "error: engine configuration does not match the recorded "
                "run:",
                file=sys.stderr,
            )
            for key in sorted(set(recorded_shape) | set(shape)):
                if recorded_shape.get(key) != shape.get(key):
                    print(
                        f"  {key}: recorded {recorded_shape.get(key)!r}, "
                        f"configured {shape.get(key)!r}",
                        file=sys.stderr,
                    )
            return 1

    report = replay_flight(args.log, engine_factory)
    print(report.summary())
    for mismatch in report.mismatches[:5]:
        print(
            f"  seq {mismatch['seq']} shard {mismatch['shard']} "
            f"{mismatch['command']}: first differing byte at offset "
            f"{mismatch['first_difference']}",
            file=sys.stderr,
        )
    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_export_trace(args) -> int:
    from repro.serving.observability import (
        read_flight_log,
        timeline_from_flight,
        validate_trace_events,
        write_trace_events,
    )

    manifest, _ = read_flight_log(args.log)
    print(
        f"flight log {args.log}: {manifest['records']} records, "
        f"{manifest['n_shards']} shard(s), transport "
        f"{manifest['transport']}"
    )
    timelines = timeline_from_flight(args.log)
    if not timelines:
        print("error: no step traffic in the flight log", file=sys.stderr)
        return 1
    path = write_trace_events(args.out, timelines)
    import json

    events = validate_trace_events(json.loads(path.read_text()))
    print(
        f"wrote {events} span(s) over {len(timelines)} tick(s) to {path} "
        f"(open in https://ui.perfetto.dev)"
    )
    return 0


_COMMANDS = {
    "study": _cmd_study,
    "importance": _cmd_importance,
    "dataset": _cmd_dataset,
    "bounds": _cmd_bounds,
    "simulate-streams": _cmd_simulate_streams,
    "serve-cluster": _cmd_serve_cluster,
    "serve-worker": _cmd_serve_worker,
    "replay-flight": _cmd_replay_flight,
    "export-trace": _cmd_export_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except Exception as error:  # surface library errors as CLI messages
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
