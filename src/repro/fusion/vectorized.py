"""Vectorized information fusion over ragged segment batches.

The scalar rules in :mod:`repro.fusion.information` fuse *one* outcome
prefix at a time; serving many tracked objects per tick that way costs one
Python loop per stream and per buffered frame.  This module fuses a whole
:class:`~repro.core.ragged.RaggedBatch` at once.

:func:`majority_vote_batch` is an exact array implementation of the paper's
rule (:class:`~repro.fusion.information.MajorityVote`): pure integer
counting with the same most-recent-tied-outcome tie-break, so a segment
fused here is bitwise identical to ``MajorityVote().fuse`` on the same
prefix.  :func:`fuse_segments` is the dispatcher the wrapper, the trace
path, and the streaming engine all share: vectorized for majority voting,
per-segment fallback for every other :class:`InformationFusion` rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ragged import RaggedBatch, segment_class_counts
from repro.fusion.information import InformationFusion, MajorityVote

__all__ = ["VoteResult", "majority_vote_batch", "fuse_segments"]


@dataclass(frozen=True)
class VoteResult:
    """Per-segment outcome of a batched majority vote.

    Attributes
    ----------
    fused:
        The fused outcome per segment.
    fused_counts:
        How many buffered outcomes agree with the fused one, per segment.
    unique_counts:
        Number of distinct outcomes per segment.
    codes:
        The distinct outcome values of the whole batch (sorted).
    counts:
        Per-segment occurrence counts, shape ``(n_segments, codes.size)``.
        Together with ``codes`` this lets downstream consumers (the taQF
        kernel) reuse the counting pass instead of repeating it.
    """

    fused: np.ndarray
    fused_counts: np.ndarray
    unique_counts: np.ndarray
    codes: np.ndarray
    counts: np.ndarray

    @property
    def class_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(codes, counts)`` pair in ``segment_class_counts`` layout."""
        return self.codes, self.counts


def majority_vote_batch(batch: RaggedBatch) -> VoteResult:
    """Majority-vote every segment of the batch, ties to the most recent.

    Exact integer arithmetic throughout: per-segment class counts via
    ``bincount``, tie-breaking via the latest flat position at which each
    class occurs (the tied class seen most recently wins, matching
    ``MajorityVote``'s reverse scan).
    """
    codes, counts, key = segment_class_counts(batch, with_key=True)
    n_segments, n_codes = counts.shape

    # Latest flat position of each (segment, class) occurrence; -1 = never.
    last_pos = np.full(n_segments * n_codes, -1, dtype=np.int64)
    np.maximum.at(last_pos, key, np.arange(batch.total, dtype=np.int64))
    last_pos = last_pos.reshape(n_segments, n_codes)

    top = counts.max(axis=1)
    # Among top-count classes, pick the one occurring latest in the segment.
    tie_score = np.where(counts == top[:, None], last_pos, -1)
    fused_code = tie_score.argmax(axis=1)
    rows = np.arange(n_segments)
    return VoteResult(
        fused=codes[fused_code],
        fused_counts=counts[rows, fused_code],
        unique_counts=np.count_nonzero(counts, axis=1),
        codes=codes,
        counts=counts,
    )


def fuse_segments(
    fusion: InformationFusion, batch: RaggedBatch
) -> tuple[np.ndarray, VoteResult | None]:
    """Fuse every segment of the batch with the given rule.

    ``MajorityVote`` takes the vectorized path and additionally returns
    its :class:`VoteResult` so callers can reuse the class-count pass for
    the taQFs; any other rule falls back to one ``fuse`` call per segment
    and returns ``None`` for the stats.  The fused outcomes are int64,
    one per segment, in both paths.
    """
    if type(fusion) is MajorityVote:
        vote = majority_vote_batch(batch)
        return vote.fused, vote
    fused = np.empty(batch.n_segments, dtype=np.int64)
    certainties = batch.certainties()
    for i in range(batch.n_segments):
        start = batch.offsets[i]
        stop = start + batch.lengths[i]
        fused[i] = fusion.fuse(
            batch.outcomes[start:stop], certainties[start:stop]
        )
    return fused, None
