"""Information fusion and uncertainty fusion over timeseries outcomes."""

from repro.fusion.dempster import (
    DempsterShaferFusion,
    SimpleSupportMass,
    combine_simple_support,
)
from repro.fusion.information import (
    ExponentialDecayVote,
    InformationFusion,
    LatestOutcome,
    MajorityVote,
    WeightedMajorityVote,
)
from repro.fusion.vectorized import (
    VoteResult,
    fuse_segments,
    majority_vote_batch,
)
from repro.fusion.uncertainty import (
    NaiveProductFusion,
    OpportuneFusion,
    UNCERTAINTY_FUSION_REGISTRY,
    UncertaintyFusion,
    WorstCaseFusion,
    get_uncertainty_fusion,
)

__all__ = [
    "DempsterShaferFusion",
    "SimpleSupportMass",
    "combine_simple_support",
    "ExponentialDecayVote",
    "InformationFusion",
    "LatestOutcome",
    "MajorityVote",
    "WeightedMajorityVote",
    "VoteResult",
    "fuse_segments",
    "majority_vote_batch",
    "NaiveProductFusion",
    "OpportuneFusion",
    "UNCERTAINTY_FUSION_REGISTRY",
    "UncertaintyFusion",
    "WorstCaseFusion",
    "get_uncertainty_fusion",
]
