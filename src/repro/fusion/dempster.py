"""Dempster-Shafer information fusion over classifier outcomes.

The paper's related work cites Rogova's combination of neural-network
classifiers via Dempster-Shafer theory as the classical alternative to
plain voting.  This module implements that combiner for the wrapper
setting: every timestep's (outcome, certainty) pair becomes a *simple
support function* -- mass ``certainty`` on the predicted class and the
remaining mass on the frame of discernment (ignorance) -- and successive
timesteps are combined with Dempster's rule.

Compared to majority voting this weighs confident outcomes more and yields
a numeric *belief* per class plus a *conflict* measure, both useful as
additional timeseries-aware quality factors.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ValidationError
from repro.fusion.information import InformationFusion

__all__ = ["SimpleSupportMass", "combine_simple_support", "DempsterShaferFusion"]


class SimpleSupportMass:
    """A basic probability assignment with one focal class + ignorance.

    Attributes
    ----------
    masses:
        Mapping from class id to mass committed to exactly that class.
    ignorance:
        Mass on the whole frame of discernment.
    """

    def __init__(self, masses: dict[int, float], ignorance: float) -> None:
        total = sum(masses.values()) + ignorance
        if any(m < -1e-12 for m in masses.values()) or ignorance < -1e-12:
            raise ValidationError("masses must be non-negative")
        if abs(total - 1.0) > 1e-9:
            raise ValidationError(f"masses must sum to 1, got {total}")
        self.masses = {int(c): float(m) for c, m in masses.items() if m > 0.0}
        self.ignorance = float(ignorance)

    @classmethod
    def from_outcome(cls, outcome: int, certainty: float) -> "SimpleSupportMass":
        """Simple support function: mass ``certainty`` on the outcome."""
        if not 0.0 <= certainty <= 1.0:
            raise ValidationError(f"certainty must lie in [0, 1], got {certainty}")
        return cls({int(outcome): certainty}, 1.0 - certainty)

    def belief(self, class_id: int) -> float:
        """Belief committed to exactly ``class_id``."""
        return self.masses.get(int(class_id), 0.0)

    def best_class(self) -> int:
        """The class with maximal committed mass.

        Raises
        ------
        ValidationError
            If no mass is committed to any class (total ignorance).
        """
        if not self.masses:
            raise ValidationError("total ignorance: no class has support")
        return max(self.masses, key=lambda c: (self.masses[c], -c))


def combine_simple_support(
    a: SimpleSupportMass, b: SimpleSupportMass
) -> tuple[SimpleSupportMass, float]:
    """Dempster's rule for singleton-focal BPAs.

    Because every focal element is either a singleton class or the full
    frame, the combination stays in the same family and runs in
    O(|classes|) time.

    Returns
    -------
    tuple
        ``(combined, conflict)`` where ``conflict`` is the mass assigned
        to contradictory pairs before renormalisation (Shafer's K).
    """
    conflict = 0.0
    combined: dict[int, float] = {}
    for c_a, m_a in a.masses.items():
        for c_b, m_b in b.masses.items():
            if c_a == c_b:
                combined[c_a] = combined.get(c_a, 0.0) + m_a * m_b
            else:
                conflict += m_a * m_b
    for c_a, m_a in a.masses.items():
        combined[c_a] = combined.get(c_a, 0.0) + m_a * b.ignorance
    for c_b, m_b in b.masses.items():
        combined[c_b] = combined.get(c_b, 0.0) + m_b * a.ignorance
    ignorance = a.ignorance * b.ignorance

    if conflict >= 1.0 - 1e-12:
        raise ValidationError(
            "total conflict: the evidence is fully contradictory"
        )
    # Renormalise against the actually accumulated mass rather than
    # ``1 - conflict``: over long combination chains the two drift apart by
    # floating-point error, and the BPA invariant must hold exactly.
    total = sum(combined.values()) + ignorance
    combined = {c: m / total for c, m in combined.items()}
    return SimpleSupportMass(combined, ignorance / total), conflict


class DempsterShaferFusion(InformationFusion):
    """Information-fusion rule based on Dempster's rule of combination.

    Each momentaneous outcome contributes a simple support function with
    mass equal to its certainty (clipped to ``max_certainty`` so a single
    certainty-1.0 outcome cannot create irreversible total commitment).
    The fused outcome is the class with maximal combined belief; ties and
    total ignorance resolve to the most recent outcome.

    Parameters
    ----------
    max_certainty:
        Upper clip applied to each certainty before it becomes mass.
    default_certainty:
        Mass used when the caller provides no certainties.
    """

    def __init__(self, max_certainty: float = 0.99, default_certainty: float = 0.6) -> None:
        if not 0.0 < max_certainty < 1.0:
            raise ValidationError(
                f"max_certainty must lie strictly between 0 and 1, got {max_certainty}"
            )
        if not 0.0 < default_certainty <= max_certainty:
            raise ValidationError(
                "default_certainty must lie in (0, max_certainty], got "
                f"{default_certainty}"
            )
        self.max_certainty = max_certainty
        self.default_certainty = default_certainty

    def combine_series(
        self, outcomes: Sequence[int], certainties: Sequence[float] | None = None
    ) -> tuple[SimpleSupportMass, float]:
        """Return the combined BPA and the *accumulated* conflict mass."""
        outcomes = self._check(outcomes)
        if certainties is None:
            certainties = [self.default_certainty] * len(outcomes)
        if len(certainties) != len(outcomes):
            raise ValidationError(
                "certainties must align with outcomes, got "
                f"{len(certainties)} vs {len(outcomes)}"
            )
        combined = SimpleSupportMass.from_outcome(
            outcomes[0], min(float(certainties[0]), self.max_certainty)
        )
        total_conflict = 0.0
        for outcome, certainty in zip(outcomes[1:], certainties[1:]):
            mass = SimpleSupportMass.from_outcome(
                outcome, min(float(certainty), self.max_certainty)
            )
            combined, conflict = combine_simple_support(combined, mass)
            total_conflict += conflict
        return combined, total_conflict

    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        combined, _ = self.combine_series(outcomes, certainties)
        if not combined.masses:
            return int(outcomes[-1])
        best = combined.best_class()
        # Most-recent tie-break, consistent with the paper's majority rule.
        top = combined.masses[best]
        tied = {c for c, m in combined.masses.items() if abs(m - top) < 1e-12}
        if len(tied) > 1:
            for outcome in reversed(list(outcomes)):
                if int(outcome) in tied:
                    return int(outcome)
        return best
