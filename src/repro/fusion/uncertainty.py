"""Uncertainty fusion: joint uncertainty for fused outcomes.

These are the related-work baselines the paper compares the taUW against
(Section II, equations 1-3):

* **naive** -- assumes independent failures and multiplies the momentaneous
  uncertainties, ``u = prod(u_i)``.  Systematic within-series errors violate
  the independence assumption, so this baseline is badly overconfident.
* **opportune** -- the minimum uncertainty seen so far.  Valid only if the
  momentaneous estimates are never overconfident; in practice it inherits
  and amplifies their overconfident tail.
* **worst-case** -- the maximum uncertainty seen so far.  Dependable but so
  conservative that it negates the benefit of information fusion.

Each rule consumes the momentaneous uncertainty estimates
:math:`u_0 ... u_i` of the current series prefix and emits the joint
uncertainty attributed to the fused outcome at step :math:`i`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "UncertaintyFusion",
    "NaiveProductFusion",
    "OpportuneFusion",
    "WorstCaseFusion",
    "UNCERTAINTY_FUSION_REGISTRY",
    "get_uncertainty_fusion",
]


class UncertaintyFusion(ABC):
    """Strategy interface: combine momentaneous uncertainties into one."""

    #: Registry key / display name of the rule.
    name: str = "abstract"

    @abstractmethod
    def fuse(self, uncertainties: Sequence[float]) -> float:
        """Return the joint uncertainty for the prefix ``uncertainties``."""

    @staticmethod
    def _check(uncertainties: Sequence[float]) -> np.ndarray:
        arr = np.asarray(uncertainties, dtype=float).ravel()
        if arr.size == 0:
            raise ValidationError("cannot fuse an empty uncertainty sequence")
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValidationError("uncertainties must lie in [0, 1]")
        return arr

    def fuse_prefixes(self, uncertainties: Sequence[float]) -> list[float]:
        """Joint uncertainty after each timestep (one value per prefix)."""
        arr = self._check(uncertainties)
        return [self.fuse(arr[: i + 1]) for i in range(arr.size)]


class NaiveProductFusion(UncertaintyFusion):
    """Equation (1): ``u = prod(u_i)`` -- assumes independent failures."""

    name = "naive"

    def fuse(self, uncertainties: Sequence[float]) -> float:
        arr = self._check(uncertainties)
        return float(np.prod(arr))


class OpportuneFusion(UncertaintyFusion):
    """Equation (2): ``u = min(u_i)`` -- trusts the most confident estimate."""

    name = "opportune"

    def fuse(self, uncertainties: Sequence[float]) -> float:
        arr = self._check(uncertainties)
        return float(np.min(arr))


class WorstCaseFusion(UncertaintyFusion):
    """Equation (3): ``u = max(u_i)`` -- keeps the most conservative estimate."""

    name = "worst-case"

    def fuse(self, uncertainties: Sequence[float]) -> float:
        arr = self._check(uncertainties)
        return float(np.max(arr))


UNCERTAINTY_FUSION_REGISTRY: dict[str, type[UncertaintyFusion]] = {
    cls.name: cls
    for cls in (NaiveProductFusion, OpportuneFusion, WorstCaseFusion)
}


def get_uncertainty_fusion(name: str) -> UncertaintyFusion:
    """Instantiate a fusion rule by registry name."""
    try:
        return UNCERTAINTY_FUSION_REGISTRY[name]()
    except KeyError:
        raise ValidationError(
            f"unknown uncertainty fusion {name!r}; expected one of "
            f"{sorted(UNCERTAINTY_FUSION_REGISTRY)}"
        ) from None
