"""Information fusion over successive model outcomes.

The paper fuses the classifier outcomes of a timeseries by majority voting,
resolving ties in favour of the most recent momentaneous prediction.  A few
additional transparent combiners from the classifier-combination literature
(Kittler et al.) are provided for ablations; all operate on the outcomes
seen *so far* and can therefore run incrementally at every timestep.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Sequence

from repro.exceptions import ValidationError

__all__ = [
    "InformationFusion",
    "MajorityVote",
    "LatestOutcome",
    "WeightedMajorityVote",
    "ExponentialDecayVote",
]


class InformationFusion(ABC):
    """Strategy interface: combine a prefix of outcomes into one outcome."""

    @abstractmethod
    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        """Return the fused outcome for ``outcomes[0..i]``.

        Parameters
        ----------
        outcomes:
            The momentaneous predictions :math:`o_0 ... o_i` observed so
            far, oldest first.
        certainties:
            Optional per-outcome certainties :math:`c_j = 1 - u_j`; ignored
            by unweighted rules.
        """

    @staticmethod
    def _check(outcomes: Sequence[int]) -> list[int]:
        if len(outcomes) == 0:
            raise ValidationError("cannot fuse an empty outcome sequence")
        return [int(o) for o in outcomes]

    def fuse_prefixes(
        self, outcomes: Sequence[int], certainties: Sequence[float] | None = None
    ) -> list[int]:
        """Fused outcome after each timestep: ``[fuse(o[:1]), fuse(o[:2]), ...]``."""
        outcomes = self._check(outcomes)
        certs = list(certainties) if certainties is not None else None
        return [
            self.fuse(outcomes[: i + 1], certs[: i + 1] if certs is not None else None)
            for i in range(len(outcomes))
        ]


class MajorityVote(InformationFusion):
    """The paper's IF rule: mode of the outcomes, ties -> most recent.

    "the mode of the number of momentaneous predictions per class is chosen
    as the fused outcome [...] To resolve ties, the most recent momentaneous
    prediction is chosen in case two or more classes were predicted the
    greatest number of times."
    """

    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        outcomes = self._check(outcomes)
        counts = Counter(outcomes)
        top = max(counts.values())
        tied = {cls for cls, cnt in counts.items() if cnt == top}
        if len(tied) == 1:
            return tied.pop()
        for outcome in reversed(outcomes):
            if outcome in tied:
                return outcome
        raise AssertionError("unreachable: a tied class must occur in outcomes")


class LatestOutcome(InformationFusion):
    """Degenerate rule: always the most recent prediction (no fusion).

    Serves as the "isolated prediction" baseline in comparisons.
    """

    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        return self._check(outcomes)[-1]


class WeightedMajorityVote(InformationFusion):
    """Votes weighted by the momentaneous certainty of each outcome.

    An outcome backed by a confident prediction counts more.  Falls back to
    plain majority voting when certainties are unavailable.  Ties (equal
    summed weight) resolve to the most recent tied outcome, mirroring
    :class:`MajorityVote`.
    """

    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        outcomes = self._check(outcomes)
        if certainties is None:
            return MajorityVote().fuse(outcomes)
        if len(certainties) != len(outcomes):
            raise ValidationError(
                "certainties must align with outcomes, got "
                f"{len(certainties)} vs {len(outcomes)}"
            )
        weights: dict[int, float] = {}
        for outcome, certainty in zip(outcomes, certainties):
            if not 0.0 <= certainty <= 1.0:
                raise ValidationError(f"certainty {certainty!r} outside [0, 1]")
            weights[outcome] = weights.get(outcome, 0.0) + float(certainty)
        top = max(weights.values())
        tied = {cls for cls, w in weights.items() if abs(w - top) < 1e-12}
        if len(tied) == 1:
            return tied.pop()
        for outcome in reversed(outcomes):
            if outcome in tied:
                return outcome
        raise AssertionError("unreachable: a tied class must occur in outcomes")


class ExponentialDecayVote(InformationFusion):
    """Majority vote with exponentially decaying weight on older outcomes.

    The most recent outcome has weight 1, the one before ``decay``, then
    ``decay**2`` and so on.  With ``decay=1`` this reduces to plain majority
    voting with most-recent tie-breaking; with ``decay=0`` it reduces to
    :class:`LatestOutcome`.
    """

    def __init__(self, decay: float = 0.9) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValidationError(f"decay must lie in [0, 1], got {decay}")
        self.decay = decay

    def fuse(self, outcomes: Sequence[int], certainties: Sequence[float] | None = None) -> int:
        outcomes = self._check(outcomes)
        weights: dict[int, float] = {}
        for age, outcome in enumerate(reversed(outcomes)):
            weights[outcome] = weights.get(outcome, 0.0) + self.decay**age
        top = max(weights.values())
        tied = {cls for cls, w in weights.items() if abs(w - top) < 1e-12}
        if len(tied) == 1:
            return tied.pop()
        for outcome in reversed(outcomes):
            if outcome in tied:
                return outcome
        raise AssertionError("unreachable: a tied class must occur in outcomes")
