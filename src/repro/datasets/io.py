"""Dataset serialisation: save/load timeseries datasets as ``.npz``.

Generating and augmenting paper-scale datasets takes tens of seconds; this
module persists a :class:`repro.datasets.gtsrb.TimeseriesDataset` (minus
the non-numeric situation metadata) so repeated experiments can reuse one
draw.  The round trip preserves every array consumed downstream: class ids,
sizes, distances, positions, deficits, and sensed quality signals.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.datasets.gtsrb import SignSeries, TimeseriesDataset
from repro.exceptions import ValidationError

__all__ = ["save_dataset_npz", "load_dataset_npz"]


def save_dataset_npz(dataset: TimeseriesDataset, path) -> pathlib.Path:
    """Write a dataset to ``path`` in compressed ``.npz`` form.

    Situation settings are not persisted (they are generator metadata);
    everything the models and wrappers consume survives the round trip.
    """
    if len(dataset) == 0:
        raise ValidationError("refusing to save an empty dataset")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    lengths = np.array([s.n_frames for s in dataset], dtype=np.int64)
    payload = {
        "n_classes": np.array([dataset.n_classes], dtype=np.int64),
        "series_ids": np.array([s.series_id for s in dataset], dtype=np.int64),
        "class_ids": np.array([s.class_id for s in dataset], dtype=np.int64),
        "lengths": lengths,
        "sizes_px": np.concatenate([s.sizes_px for s in dataset]),
        "distances_m": np.concatenate([s.distances_m for s in dataset]),
        "positions": np.vstack([s.positions for s in dataset]),
        "deficits": np.vstack([s.deficits for s in dataset]),
        "sensed": np.vstack([s.sensed for s in dataset]),
    }
    np.savez_compressed(path, **payload)
    return path


def load_dataset_npz(path) -> TimeseriesDataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no dataset file at {path}")
    with np.load(path) as data:
        lengths = data["lengths"]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        dataset = TimeseriesDataset(n_classes=int(data["n_classes"][0]))
        for i in range(lengths.size):
            lo, hi = offsets[i], offsets[i + 1]
            dataset.series.append(
                SignSeries(
                    series_id=int(data["series_ids"][i]),
                    class_id=int(data["class_ids"][i]),
                    sizes_px=data["sizes_px"][lo:hi].copy(),
                    distances_m=data["distances_m"][lo:hi].copy(),
                    positions=data["positions"][lo:hi].copy(),
                    deficits=data["deficits"][lo:hi].copy(),
                    sensed=data["sensed"][lo:hi].copy(),
                    situation=None,
                )
            )
    return dataset
