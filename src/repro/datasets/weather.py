"""Generative weather model emulating historical German weather statistics.

The paper draws situation settings from historical Deutscher Wetterdienst
(DWD) records.  Those records are not available offline, so this module
implements a seasonal generative model with the moments that matter for the
quality deficits: rain occurrence and intensity, fog, cloud cover,
temperature, humidity, and the solar geometry that drives darkness and
natural backlight.  The parameters are set to plausible German climatology
(wet autumns, foggy cold mornings, short winter days) -- exact fidelity to
DWD is not required because only the induced *deficit distribution* feeds
the study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["WeatherState", "WeatherModel", "sun_elevation_deg"]


@dataclass(frozen=True)
class WeatherState:
    """Weather variables for one situation.

    Attributes
    ----------
    rain_mm_h:
        Rain rate in millimetres per hour (0 when dry).
    fog_visibility_m:
        Meteorological visibility in metres (large = clear).
    cloud_cover:
        Cloud fraction in ``[0, 1]``.
    temperature_c:
        Air temperature in degrees Celsius.
    humidity:
        Relative humidity in ``[0, 1]``.
    sun_elevation_deg:
        Solar elevation above the horizon in degrees (negative at night).
    light_level:
        Ambient light in ``[0, 1]`` (1 = bright day), derived from solar
        elevation and cloud cover.
    """

    rain_mm_h: float
    fog_visibility_m: float
    cloud_cover: float
    temperature_c: float
    humidity: float
    sun_elevation_deg: float
    light_level: float


def sun_elevation_deg(month: int, hour: float, latitude_deg: float = 50.0) -> float:
    """Approximate solar elevation for a mid-latitude location.

    Uses the standard declination approximation
    ``delta = -23.44 * cos(2 pi (day_of_year + 10) / 365)`` with the month
    mapped to its middle day, and the hour angle for local solar time.
    Accurate to a few degrees -- plenty for driving darkness/backlight
    deficits.

    Parameters
    ----------
    month:
        Calendar month, 1..12.
    hour:
        Local solar time in hours, ``[0, 24)``.
    latitude_deg:
        Geographic latitude (Germany spans roughly 47..55 deg N).
    """
    if not 1 <= month <= 12:
        raise ValidationError(f"month must be in 1..12, got {month}")
    if not 0.0 <= hour < 24.0:
        raise ValidationError(f"hour must be in [0, 24), got {hour}")
    day_of_year = (month - 1) * 30.4 + 15.0
    declination = np.radians(-23.44 * np.cos(2.0 * np.pi * (day_of_year + 10.0) / 365.0))
    hour_angle = np.radians(15.0 * (hour - 12.0))
    lat = np.radians(latitude_deg)
    sin_elev = np.sin(lat) * np.sin(declination) + np.cos(lat) * np.cos(
        declination
    ) * np.cos(hour_angle)
    return float(np.degrees(np.arcsin(np.clip(sin_elev, -1.0, 1.0))))


class WeatherModel:
    """Samples :class:`WeatherState` values with German seasonal structure.

    The model is intentionally simple but captures the couplings that shape
    the deficits: rain is more frequent in summer/autumn, fog forms on cold
    humid mornings, winter days are short, heavy clouds darken the scene.

    Parameters
    ----------
    rain_probability_amplitude:
        Seasonal swing of the rain-occurrence probability around its base.
    """

    #: Monthly mean temperature (deg C) for a German reference climate.
    MONTHLY_TEMP_C = np.array(
        [0.5, 1.5, 5.0, 9.0, 13.5, 16.5, 18.5, 18.0, 14.0, 9.5, 4.5, 1.5]
    )
    #: Monthly rain-occurrence probability.
    MONTHLY_RAIN_P = np.array(
        [0.27, 0.24, 0.24, 0.22, 0.25, 0.27, 0.28, 0.27, 0.25, 0.27, 0.29, 0.30]
    )

    def __init__(self, rain_probability_amplitude: float = 0.0) -> None:
        if not 0.0 <= rain_probability_amplitude <= 0.5:
            raise ValidationError(
                "rain_probability_amplitude must be in [0, 0.5], "
                f"got {rain_probability_amplitude}"
            )
        self.rain_probability_amplitude = rain_probability_amplitude

    def sample(
        self, month: int, hour: float, latitude_deg: float, rng: np.random.Generator
    ) -> WeatherState:
        """Sample one weather state for the given month/hour/latitude."""
        if not 1 <= month <= 12:
            raise ValidationError(f"month must be in 1..12, got {month}")
        temp_mean = float(self.MONTHLY_TEMP_C[month - 1])
        temperature = rng.normal(temp_mean, 4.0)

        rain_p = float(self.MONTHLY_RAIN_P[month - 1]) + (
            self.rain_probability_amplitude
            * np.sin(2.0 * np.pi * (month - 6) / 12.0)
        )
        raining = rng.uniform() < np.clip(rain_p, 0.0, 1.0)
        rain_mm_h = float(rng.lognormal(mean=0.2, sigma=0.9)) if raining else 0.0
        rain_mm_h = min(rain_mm_h, 30.0)

        humidity = float(np.clip(rng.normal(0.72 if raining else 0.62, 0.12), 0.2, 1.0))

        # Fog: cold, humid, calm early hours.
        fog_propensity = (
            (humidity - 0.75) * 4.0
            + (8.0 - temperature) * 0.05
            + (1.0 if 4.0 <= hour <= 9.0 else 0.0) * 0.8
        )
        foggy = rng.uniform() < float(np.clip(0.05 + 0.1 * fog_propensity, 0.0, 0.6))
        if foggy:
            fog_visibility_m = float(np.clip(rng.lognormal(5.3, 0.7), 40.0, 2000.0))
        else:
            fog_visibility_m = float(np.clip(rng.lognormal(9.6, 0.4), 4000.0, 50000.0))

        cloud_cover = float(
            np.clip(rng.beta(2.2, 1.8) + (0.25 if raining else 0.0), 0.0, 1.0)
        )

        elevation = sun_elevation_deg(month, hour, latitude_deg)
        # Ambient light: smooth ramp through twilight, dimmed by clouds.
        twilight = 1.0 / (1.0 + np.exp(-(elevation + 3.0) / 3.0))
        light_level = float(np.clip(twilight * (1.0 - 0.45 * cloud_cover), 0.0, 1.0))

        return WeatherState(
            rain_mm_h=rain_mm_h,
            fog_visibility_m=fog_visibility_m,
            cloud_cover=cloud_cover,
            temperature_c=float(temperature),
            humidity=humidity,
            sun_elevation_deg=elevation,
            light_level=light_level,
        )
