"""Synthetic GTSRB-like timeseries dataset.

The German Traffic Sign Recognition Benchmark provides 1307 series of
traffic-sign images recorded while a car approaches the sign, 29-30 frames
each, over 43 classes with a strongly skewed class distribution.  The images
themselves are not available offline; this module generates series with the
same *structure*: a class drawn from the GTSRB frequency profile, approach
geometry producing a growing apparent sign size, a world position per frame
(consumed by the tracking substrate), and per-frame deficit intensities
derived from one situation setting per series
(:mod:`repro.datasets.situations`).

What downstream components consume is exactly what they would get from real
GTSRB: per-frame model inputs (here: embeddings built by
:mod:`repro.models.features`), sensed quality factors, and ground-truth
classes -- so the uncertainty-wrapper stack above is exercised unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datasets.augmentation import (
    DeficitProfile,
    N_DEFICITS,
    SensorModel,
    SeriesAugmenter,
)
from repro.datasets.situations import (
    SituationGenerator,
    SituationSetting,
    deficits_from_situation,
)
from repro.exceptions import ValidationError

__all__ = [
    "SignClass",
    "GTSRB_CLASSES",
    "N_CLASSES",
    "CONFUSION_PARTNERS",
    "SignSeries",
    "TimeseriesDataset",
    "SeriesGeometry",
    "GTSRBLikeGenerator",
]


@dataclass(frozen=True)
class SignClass:
    """One traffic-sign class of the GTSRB catalogue."""

    class_id: int
    name: str
    category: str
    frequency_weight: float


def _build_catalogue() -> list[SignClass]:
    """The 43 GTSRB classes with approximate relative frequencies.

    Weights follow the well-known GTSRB imbalance: common speed limits and
    priority/yield signs dominate; `20 km/h`, `dangerous curve left` and
    similar classes are rare.
    """
    entries = [
        # (name, category, weight)
        ("speed limit 20", "speed_limit", 0.5),
        ("speed limit 30", "speed_limit", 5.5),
        ("speed limit 50", "speed_limit", 5.6),
        ("speed limit 60", "speed_limit", 3.5),
        ("speed limit 70", "speed_limit", 4.9),
        ("speed limit 80", "speed_limit", 4.6),
        ("end of speed limit 80", "end_of_restriction", 1.0),
        ("speed limit 100", "speed_limit", 3.6),
        ("speed limit 120", "speed_limit", 3.5),
        ("no passing", "prohibitory", 3.7),
        ("no passing for trucks", "prohibitory", 5.0),
        ("right-of-way at next intersection", "danger", 3.3),
        ("priority road", "priority", 5.3),
        ("yield", "priority", 5.4),
        ("stop", "priority", 1.9),
        ("no vehicles", "prohibitory", 1.5),
        ("no trucks", "prohibitory", 1.0),
        ("no entry", "prohibitory", 2.8),
        ("general caution", "danger", 3.0),
        ("dangerous curve left", "danger", 0.5),
        ("dangerous curve right", "danger", 0.9),
        ("double curve", "danger", 0.8),
        ("bumpy road", "danger", 0.9),
        ("slippery road", "danger", 1.3),
        ("road narrows on the right", "danger", 0.7),
        ("road work", "danger", 3.8),
        ("traffic signals", "danger", 1.5),
        ("pedestrians", "danger", 0.6),
        ("children crossing", "danger", 1.4),
        ("bicycles crossing", "danger", 0.7),
        ("beware of ice", "danger", 1.1),
        ("wild animals crossing", "danger", 2.0),
        ("end of all restrictions", "end_of_restriction", 0.6),
        ("turn right ahead", "mandatory", 1.7),
        ("turn left ahead", "mandatory", 1.0),
        ("ahead only", "mandatory", 3.0),
        ("go straight or right", "mandatory", 1.0),
        ("go straight or left", "mandatory", 0.5),
        ("keep right", "mandatory", 5.2),
        ("keep left", "mandatory", 0.8),
        ("roundabout mandatory", "mandatory", 0.9),
        ("end of no passing", "end_of_restriction", 0.6),
        ("end of no passing for trucks", "end_of_restriction", 0.6),
    ]
    return [
        SignClass(class_id=i, name=name, category=cat, frequency_weight=w)
        for i, (name, cat, w) in enumerate(entries)
    ]


GTSRB_CLASSES: list[SignClass] = _build_catalogue()
N_CLASSES: int = len(GTSRB_CLASSES)


def _build_confusion_partners() -> dict[int, int]:
    """Primary confusion partner per class.

    Under degraded input quality a classifier tends to confuse signs within
    the same visual family (speed limits with each other, red-rim triangles
    with each other, blue circles with each other).  Each class gets the
    next class of its own category (cyclically) as its most likely confusion
    target; this drives the systematic, within-series-correlated errors the
    study depends on.
    """
    by_category: dict[str, list[int]] = {}
    for sign in GTSRB_CLASSES:
        by_category.setdefault(sign.category, []).append(sign.class_id)
    partners: dict[int, int] = {}
    for members in by_category.values():
        if len(members) == 1:
            partners[members[0]] = members[0]
            continue
        for pos, class_id in enumerate(members):
            partners[class_id] = members[(pos + 1) % len(members)]
    return partners


CONFUSION_PARTNERS: dict[int, int] = _build_confusion_partners()


@dataclass(frozen=True)
class SeriesGeometry:
    """Approach geometry parameters of the synthetic camera."""

    focal_px: float = 900.0
    sign_diameter_m: float = 0.75
    frame_interval_s: float = 0.12
    min_size_px: float = 8.0
    max_size_px: float = 220.0


@dataclass
class SignSeries:
    """One series: consecutive frames of a single physical traffic sign.

    Attributes
    ----------
    series_id:
        Unique identifier within the dataset.
    class_id:
        Ground-truth class of the depicted sign.
    sizes_px:
        Apparent sign size per frame (grows as the car approaches).
    distances_m:
        Distance to the sign per frame.
    positions:
        World ``(x, y)`` position of the sign relative to the vehicle per
        frame (consumed by the tracking substrate), shape ``(n_frames, 2)``.
    deficits:
        True per-frame deficit intensities, shape ``(n_frames, 9)``.
    sensed:
        Runtime-observable quality signals per frame, shape
        ``(n_frames, 10)`` (nine sensed deficits + normalised size).
    situation:
        The situation setting assigned to this series (``None`` for
        un-augmented base series).
    """

    series_id: int
    class_id: int
    sizes_px: np.ndarray
    distances_m: np.ndarray
    positions: np.ndarray
    deficits: np.ndarray
    sensed: np.ndarray
    situation: SituationSetting | None = None

    @property
    def n_frames(self) -> int:
        return int(self.sizes_px.shape[0])

    def __len__(self) -> int:
        return self.n_frames

    def window(self, start: int, length: int, new_id: int | None = None) -> "SignSeries":
        """Return a contiguous sub-series (used for length-10 subsampling)."""
        if start < 0 or length < 1 or start + length > self.n_frames:
            raise ValidationError(
                f"window [{start}, {start + length}) out of range for a series "
                f"of {self.n_frames} frames"
            )
        stop = start + length
        return SignSeries(
            series_id=self.series_id if new_id is None else new_id,
            class_id=self.class_id,
            sizes_px=self.sizes_px[start:stop].copy(),
            distances_m=self.distances_m[start:stop].copy(),
            positions=self.positions[start:stop].copy(),
            deficits=self.deficits[start:stop].copy(),
            sensed=self.sensed[start:stop].copy(),
            situation=self.situation,
        )


@dataclass
class TimeseriesDataset:
    """A collection of :class:`SignSeries` plus the class catalogue."""

    series: list[SignSeries] = field(default_factory=list)
    n_classes: int = N_CLASSES

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self):
        return iter(self.series)

    def __getitem__(self, index: int) -> SignSeries:
        return self.series[index]

    @property
    def n_frames_total(self) -> int:
        """Total number of frames over all series."""
        return sum(s.n_frames for s in self.series)

    def class_counts(self) -> np.ndarray:
        """Number of series per class."""
        counts = np.zeros(self.n_classes, dtype=np.int64)
        for s in self.series:
            counts[s.class_id] += 1
        return counts

    def labels_per_frame(self) -> np.ndarray:
        """Ground-truth class id repeated for every frame, concatenated."""
        return np.concatenate(
            [np.full(s.n_frames, s.class_id, dtype=np.int64) for s in self.series]
        ) if self.series else np.empty(0, dtype=np.int64)


class GTSRBLikeGenerator:
    """Generates base series and augments them with situation settings.

    Parameters
    ----------
    geometry:
        Camera/approach geometry.
    frames_per_series:
        Tuple ``(min, max)`` of frames per series (GTSRB: 29-30).
    situation_generator:
        Source of situation settings for augmentation.
    augmenter:
        Propagates deficits through a series.
    sensor:
        Produces the runtime-observable quality signals.
    """

    def __init__(
        self,
        geometry: SeriesGeometry | None = None,
        frames_per_series: tuple[int, int] = (29, 30),
        situation_generator: SituationGenerator | None = None,
        augmenter: SeriesAugmenter | None = None,
        sensor: SensorModel | None = None,
    ) -> None:
        if frames_per_series[0] < 1 or frames_per_series[0] > frames_per_series[1]:
            raise ValidationError(
                f"invalid frames_per_series range {frames_per_series}"
            )
        self.geometry = geometry or SeriesGeometry()
        self.frames_per_series = frames_per_series
        self.situation_generator = situation_generator or SituationGenerator()
        self.augmenter = augmenter or SeriesAugmenter()
        self.sensor = sensor or SensorModel()

    # ------------------------------------------------------------------
    # Base geometry
    # ------------------------------------------------------------------
    def generate_base(
        self,
        n_series: int,
        rng: np.random.Generator,
        start_id: int = 0,
        min_per_class: int = 0,
    ) -> TimeseriesDataset:
        """Generate ``n_series`` clean series (no deficits assigned yet).

        Parameters
        ----------
        n_series:
            Number of series to generate.
        rng:
            Randomness source.
        start_id:
            First series id.
        min_per_class:
            Guarantee at least this many series per class (the real GTSRB
            training set covers every class; without the guarantee small
            synthetic samples can miss rare classes entirely, which would
            make every test series of that class trivially wrong).  The
            remaining series are drawn from the frequency profile.
        """
        if n_series < 0:
            raise ValidationError(f"n_series must be >= 0, got {n_series}")
        if min_per_class < 0:
            raise ValidationError(f"min_per_class must be >= 0, got {min_per_class}")
        if min_per_class * N_CLASSES > n_series:
            raise ValidationError(
                f"min_per_class={min_per_class} needs at least "
                f"{min_per_class * N_CLASSES} series, got n_series={n_series}"
            )
        weights = np.array([c.frequency_weight for c in GTSRB_CLASSES])
        weights = weights / weights.sum()
        class_ids = np.repeat(np.arange(N_CLASSES), min_per_class)
        n_free = n_series - class_ids.size
        class_ids = np.concatenate(
            [class_ids, rng.choice(N_CLASSES, size=n_free, p=weights)]
        )
        rng.shuffle(class_ids)
        dataset = TimeseriesDataset()
        geom = self.geometry
        for i in range(n_series):
            class_id = int(class_ids[i])
            n_frames = int(
                rng.integers(self.frames_per_series[0], self.frames_per_series[1] + 1)
            )
            speed_ms = rng.uniform(8.0, 30.0)  # refined later by augmentation
            start_distance = rng.uniform(45.0, 95.0)
            t = np.arange(n_frames) * geom.frame_interval_s
            distances = np.maximum(start_distance - speed_ms * t, 4.0)
            sizes = np.clip(
                geom.focal_px * geom.sign_diameter_m / distances,
                geom.min_size_px,
                geom.max_size_px,
            )
            lateral = rng.uniform(-4.0, 4.0)
            positions = np.stack(
                [distances, np.full(n_frames, lateral) + rng.normal(0, 0.05, n_frames)],
                axis=1,
            )
            dataset.series.append(
                SignSeries(
                    series_id=start_id + i,
                    class_id=class_id,
                    sizes_px=sizes,
                    distances_m=distances,
                    positions=positions,
                    deficits=np.zeros((n_frames, N_DEFICITS)),
                    sensed=np.zeros((n_frames, self.sensor.n_signals)),
                    situation=None,
                )
            )
        return dataset

    # ------------------------------------------------------------------
    # Augmentation
    # ------------------------------------------------------------------
    def augment_with_profile(
        self,
        series: SignSeries,
        profile: DeficitProfile,
        rng: np.random.Generator,
        new_id: int,
        situation: SituationSetting | None = None,
    ) -> SignSeries:
        """Return a copy of ``series`` carrying the given deficit profile."""
        deficit_frames = self.augmenter.propagate(profile, series.n_frames, rng)
        sensed = self.sensor.sense(deficit_frames, series.sizes_px, rng)
        return replace(
            series,
            series_id=new_id,
            deficits=deficit_frames,
            sensed=sensed,
            situation=situation,
        )

    def augment_with_situations(
        self,
        base: TimeseriesDataset,
        settings_per_series: int,
        rng: np.random.Generator,
        start_id: int = 0,
    ) -> TimeseriesDataset:
        """Augment every base series with random realistic situations.

        This is the calibration/test-set treatment of the paper: "each
        original series was augmented [28] times (each time based on a
        different setting)".
        """
        if settings_per_series < 1:
            raise ValidationError(
                f"settings_per_series must be >= 1, got {settings_per_series}"
            )
        out = TimeseriesDataset()
        next_id = start_id
        for series in base:
            for _ in range(settings_per_series):
                setting = self.situation_generator.sample(rng)
                profile = deficits_from_situation(setting)
                out.series.append(
                    self.augment_with_profile(series, profile, rng, next_id, setting)
                )
                next_id += 1
        return out

    def augment_with_grid(
        self,
        base: TimeseriesDataset,
        profiles: list[DeficitProfile],
        rng: np.random.Generator,
        start_id: int = 0,
    ) -> TimeseriesDataset:
        """Augment every base series with every profile of a fixed grid.

        This is the training-set treatment: each series with each single
        deficit at low/medium/high intensity
        (:func:`repro.datasets.augmentation.single_deficit_grid`).
        """
        if not profiles:
            raise ValidationError("profiles must not be empty")
        out = TimeseriesDataset()
        next_id = start_id
        for series in base:
            for profile in profiles:
                out.series.append(
                    self.augment_with_profile(series, profile, rng, next_id, None)
                )
                next_id += 1
        return out
