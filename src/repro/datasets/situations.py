"""Situation settings: where, when, and under which conditions a series occurs.

The paper generates 2.7 million "realistic situation settings" from DWD
weather records and OpenStreetMap street locations inside the target
application scope (Germany), assigns one setting per series, and derives the
quality deficits from it.  This module reproduces that pipeline
synthetically: a location model samples street points inside Germany, the
weather model (:mod:`repro.datasets.weather`) supplies conditions for the
sampled month/hour, and :func:`deficits_from_situation` maps the complete
setting onto the nine deficit intensities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.augmentation import DeficitProfile
from repro.datasets.weather import WeatherModel, WeatherState
from repro.exceptions import ValidationError

__all__ = [
    "GERMANY_BBOX",
    "RoadType",
    "Location",
    "LocationModel",
    "SituationSetting",
    "SituationGenerator",
    "deficits_from_situation",
]

#: Bounding box of the target application scope (lat_min, lat_max, lon_min, lon_max).
GERMANY_BBOX = (47.3, 55.0, 5.9, 15.0)


class RoadType:
    """Road categories with their typical speed (used for motion blur)."""

    URBAN = "urban"
    RURAL = "rural"
    HIGHWAY = "highway"

    SPEEDS_KMH = {URBAN: 50.0, RURAL: 100.0, HIGHWAY: 120.0}
    WEIGHTS = {URBAN: 0.5, RURAL: 0.35, HIGHWAY: 0.15}

    @classmethod
    def all(cls) -> tuple[str, ...]:
        return (cls.URBAN, cls.RURAL, cls.HIGHWAY)


@dataclass(frozen=True)
class Location:
    """A street location within (or outside) the target application scope."""

    latitude: float
    longitude: float
    road_type: str

    def in_target_scope(self, bbox: tuple[float, float, float, float] = GERMANY_BBOX) -> bool:
        """Whether the location lies inside the target application scope."""
        lat_min, lat_max, lon_min, lon_max = bbox
        return lat_min <= self.latitude <= lat_max and lon_min <= self.longitude <= lon_max


class LocationModel:
    """Samples street locations, optionally outside the target scope.

    Parameters
    ----------
    out_of_scope_probability:
        Probability of sampling a location outside Germany (used only by
        scope-compliance experiments; the paper's study keeps all data in
        scope).
    """

    def __init__(self, out_of_scope_probability: float = 0.0) -> None:
        if not 0.0 <= out_of_scope_probability <= 1.0:
            raise ValidationError(
                "out_of_scope_probability must be in [0, 1], "
                f"got {out_of_scope_probability}"
            )
        self.out_of_scope_probability = out_of_scope_probability

    def sample(self, rng: np.random.Generator) -> Location:
        """Sample one location."""
        lat_min, lat_max, lon_min, lon_max = GERMANY_BBOX
        if rng.uniform() < self.out_of_scope_probability:
            # Somewhere clearly outside the bbox (e.g. New York or Madrid).
            lat = float(rng.uniform(35.0, 45.0))
            lon = float(rng.uniform(-80.0, -3.0))
        else:
            lat = float(rng.uniform(lat_min, lat_max))
            lon = float(rng.uniform(lon_min, lon_max))
        road_types = RoadType.all()
        weights = np.array([RoadType.WEIGHTS[r] for r in road_types])
        road = str(rng.choice(road_types, p=weights / weights.sum()))
        return Location(latitude=lat, longitude=lon, road_type=road)


@dataclass(frozen=True)
class SituationSetting:
    """One complete contextual setting assigned to a series.

    Attributes
    ----------
    location:
        Where the series takes place.
    month / hour:
        When (calendar month 1..12, local hour ``[0, 24)``).
    weather:
        Sampled weather state.
    heading_deg:
        Vehicle heading (0 = towards the sun's azimuth at low elevation --
        drives natural backlight).
    vehicle_speed_kmh:
        Actual driving speed (around the road-type typical speed).
    lens_dirt / sign_dirt:
        Persistent contamination levels in ``[0, 1]``.
    """

    location: Location
    month: int
    hour: float
    weather: WeatherState
    heading_deg: float
    vehicle_speed_kmh: float
    lens_dirt: float
    sign_dirt: float


class SituationGenerator:
    """Samples realistic situation settings (the paper's 2.7 M settings pool).

    Parameters
    ----------
    location_model:
        Source of street locations; defaults to in-scope-only sampling.
    weather_model:
        Source of weather states.
    """

    def __init__(
        self,
        location_model: LocationModel | None = None,
        weather_model: WeatherModel | None = None,
    ) -> None:
        self.location_model = location_model or LocationModel()
        self.weather_model = weather_model or WeatherModel()

    def sample(self, rng: np.random.Generator) -> SituationSetting:
        """Sample one situation setting."""
        location = self.location_model.sample(rng)
        month = int(rng.integers(1, 13))
        # Driving happens mostly during the day with commuting peaks.
        hour = float(
            np.clip(
                rng.choice(
                    [rng.normal(8.0, 2.0), rng.normal(13.0, 3.0), rng.normal(18.0, 2.5)]
                ),
                0.0,
                23.99,
            )
        )
        weather = self.weather_model.sample(month, hour, location.latitude, rng)
        heading = float(rng.uniform(0.0, 360.0))
        base_speed = RoadType.SPEEDS_KMH[location.road_type]
        speed = float(np.clip(rng.normal(base_speed, base_speed * 0.15), 10.0, 180.0))
        lens_dirt = float(np.clip(rng.beta(1.2, 8.0), 0.0, 1.0))
        sign_dirt = float(np.clip(rng.beta(1.2, 7.0), 0.0, 1.0))
        return SituationSetting(
            location=location,
            month=month,
            hour=hour,
            weather=weather,
            heading_deg=heading,
            vehicle_speed_kmh=speed,
            lens_dirt=lens_dirt,
            sign_dirt=sign_dirt,
        )

    def sample_many(self, n: int, rng: np.random.Generator) -> list[SituationSetting]:
        """Sample ``n`` independent settings."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        return [self.sample(rng) for _ in range(n)]


def _saturate(x: float, scale: float) -> float:
    """Map ``x >= 0`` smoothly into ``[0, 1)`` with the given scale."""
    return float(1.0 - np.exp(-max(x, 0.0) / scale))


def deficits_from_situation(setting: SituationSetting) -> DeficitProfile:
    """Map a situation setting onto the nine deficit intensities.

    The mapping encodes the physical causes the paper's augmentation
    framework models:

    * rain deficit saturates with the rain rate;
    * darkness is the complement of ambient light;
    * haze follows inverse fog visibility;
    * natural backlight needs a low sun roughly ahead of the vehicle;
    * artificial backlight (oncoming headlights / street lights) needs
      darkness and is strongest on urban and rural roads;
    * sign/lens dirt are persistent situation properties;
    * a steamed-up lens needs high humidity and low temperature;
    * motion blur grows with speed and darkness (longer exposure).
    """
    w = setting.weather
    rain = _saturate(w.rain_mm_h, scale=6.0)
    darkness = float(np.clip(1.0 - w.light_level, 0.0, 1.0))
    haze = float(np.clip(1.0 - w.fog_visibility_m / 2000.0, 0.0, 1.0)) ** 1.5

    # Natural backlight: sun within ~40 deg of straight ahead and low.
    sun_low = float(np.clip((18.0 - w.sun_elevation_deg) / 18.0, 0.0, 1.0))
    sun_up = w.sun_elevation_deg > 0.0
    # Solar azimuth is approximated by hour: morning east (90), evening west (270).
    sun_azimuth = 90.0 + (setting.hour - 6.0) * 15.0
    heading_diff = abs((setting.heading_deg - sun_azimuth + 180.0) % 360.0 - 180.0)
    facing_sun = float(np.clip(1.0 - heading_diff / 60.0, 0.0, 1.0))
    backlight_natural = sun_low * facing_sun * (1.0 if sun_up else 0.0)

    urban_factor = {"urban": 1.0, "rural": 0.7, "highway": 0.4}[
        setting.location.road_type
    ]
    backlight_artificial = float(np.clip(darkness * urban_factor * 0.8, 0.0, 1.0))

    steamed = float(
        np.clip(
            (w.humidity - 0.7) * 3.0 * np.clip((12.0 - w.temperature_c) / 15.0, 0.0, 1.0),
            0.0,
            1.0,
        )
    )
    blur = float(
        np.clip(
            _saturate(setting.vehicle_speed_kmh - 30.0, scale=90.0)
            * (0.55 + 0.45 * darkness),
            0.0,
            1.0,
        )
    )

    return DeficitProfile.from_mapping(
        {
            "rain": rain,
            "darkness": darkness,
            "haze": haze,
            "backlight_natural": backlight_natural,
            "backlight_artificial": backlight_artificial,
            "dirt_sign": setting.sign_dirt,
            "dirt_lens": setting.lens_dirt,
            "steamed_lens": steamed,
            "motion_blur": blur,
        }
    )
