"""Dataset splitting and series subsampling.

The paper splits the 1307 GTSRB timeseries 522/392/392 into training,
calibration, and test sets (series-wise, never frame-wise -- frames of one
series are heavily dependent), and subsamples every calibration/test series
to a length-10 window with uniformly random start "to avoid biased
uncertainty predictions due to the distance from the traffic signs".
"""

from __future__ import annotations

import numpy as np

from repro.datasets.gtsrb import SignSeries, TimeseriesDataset
from repro.exceptions import ValidationError

__all__ = ["split_dataset", "subsample_series", "subsample_dataset"]


def split_dataset(
    dataset: TimeseriesDataset,
    fractions: tuple[float, float, float] = (0.4, 0.3, 0.3),
    rng: np.random.Generator | None = None,
) -> tuple[TimeseriesDataset, TimeseriesDataset, TimeseriesDataset]:
    """Randomly split a dataset by series into train/calibration/test.

    Parameters
    ----------
    dataset:
        The dataset to split; series objects are shared, not copied.
    fractions:
        Relative sizes of the three splits; must sum to 1 (the paper's
        522/392/392 corresponds to 0.4/0.3/0.3).
    rng:
        Randomness source for the permutation.

    Returns
    -------
    tuple
        ``(train, calibration, test)`` datasets.
    """
    if len(fractions) != 3:
        raise ValidationError(f"need exactly three fractions, got {len(fractions)}")
    if any(f < 0 for f in fractions):
        raise ValidationError("fractions must be non-negative")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValidationError(f"fractions must sum to 1, got {sum(fractions)}")
    rng = rng or np.random.default_rng()
    n = len(dataset)
    order = rng.permutation(n)
    n_train = int(round(fractions[0] * n))
    n_cal = int(round(fractions[1] * n))
    idx_train = order[:n_train]
    idx_cal = order[n_train : n_train + n_cal]
    idx_test = order[n_train + n_cal :]

    def subset(indices) -> TimeseriesDataset:
        return TimeseriesDataset(
            series=[dataset.series[i] for i in indices], n_classes=dataset.n_classes
        )

    return subset(idx_train), subset(idx_cal), subset(idx_test)


def subsample_series(
    series: SignSeries,
    length: int,
    rng: np.random.Generator,
    new_id: int | None = None,
) -> SignSeries:
    """Cut one contiguous window of ``length`` frames at a random start.

    Series shorter than ``length`` are returned whole (copied).
    """
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    if series.n_frames <= length:
        return series.window(0, series.n_frames, new_id=new_id)
    start = int(rng.integers(0, series.n_frames - length + 1))
    return series.window(start, length, new_id=new_id)


def subsample_dataset(
    dataset: TimeseriesDataset, length: int, rng: np.random.Generator
) -> TimeseriesDataset:
    """Apply :func:`subsample_series` to every series of a dataset."""
    out = TimeseriesDataset(n_classes=dataset.n_classes)
    for i, series in enumerate(dataset):
        out.series.append(subsample_series(series, length, rng, new_id=i))
    return out
