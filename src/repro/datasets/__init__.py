"""GTSRB-like data substrate: situations, weather, deficits, series, splits.

The paper's study runs on GTSRB timeseries augmented with nine quality
deficits drawn from realistic situation settings (DWD weather x OSM
locations).  Neither the images nor those sources are available offline, so
this package generates series with the same statistical structure; see
DESIGN.md section 2 for the substitution argument.
"""

from repro.datasets.augmentation import (
    DEFICIT_NAMES,
    N_DEFICITS,
    VARYING_DEFICITS,
    DeficitProfile,
    IntensityLevel,
    SensorModel,
    SeriesAugmenter,
    single_deficit_grid,
)
from repro.datasets.gtsrb import (
    CONFUSION_PARTNERS,
    GTSRB_CLASSES,
    GTSRBLikeGenerator,
    N_CLASSES,
    SeriesGeometry,
    SignClass,
    SignSeries,
    TimeseriesDataset,
)
from repro.datasets.situations import (
    GERMANY_BBOX,
    Location,
    LocationModel,
    RoadType,
    SituationGenerator,
    SituationSetting,
    deficits_from_situation,
)
from repro.datasets.io import load_dataset_npz, save_dataset_npz
from repro.datasets.splits import split_dataset, subsample_dataset, subsample_series
from repro.datasets.weather import WeatherModel, WeatherState, sun_elevation_deg

__all__ = [
    "DEFICIT_NAMES",
    "N_DEFICITS",
    "VARYING_DEFICITS",
    "DeficitProfile",
    "IntensityLevel",
    "SensorModel",
    "SeriesAugmenter",
    "single_deficit_grid",
    "CONFUSION_PARTNERS",
    "GTSRB_CLASSES",
    "GTSRBLikeGenerator",
    "N_CLASSES",
    "SeriesGeometry",
    "SignClass",
    "SignSeries",
    "TimeseriesDataset",
    "GERMANY_BBOX",
    "Location",
    "LocationModel",
    "RoadType",
    "SituationGenerator",
    "SituationSetting",
    "deficits_from_situation",
    "load_dataset_npz",
    "save_dataset_npz",
    "split_dataset",
    "subsample_dataset",
    "subsample_series",
    "WeatherModel",
    "WeatherState",
    "sun_elevation_deg",
]
