"""Quality-deficit model and series-aware augmentation.

The paper augments GTSRB images with nine types of quality deficits (rain,
darkness, haze, natural/artificial backlight, dirt on the sign, dirt on the
lens, a steamed-up lens, and motion blur) derived from realistic situation
settings, propagating each setting through a whole series: most deficits stay
constant over a series, while motion blur and artificial backlight may vary
frame to frame.  Since we work with synthetic embeddings rather than pixels,
a "deficit" here is an intensity in ``[0, 1]`` that later degrades the
feature representation the wrapped model sees
(:mod:`repro.models.features`).

This module defines the deficit vocabulary, per-series propagation with the
paper's constancy structure, the three-level intensity grid used for
training-set augmentation, and the sensor model that turns true deficit
intensities into the noisy runtime-observable quality factors fed to the
uncertainty wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "DEFICIT_NAMES",
    "N_DEFICITS",
    "VARYING_DEFICITS",
    "IntensityLevel",
    "DeficitProfile",
    "SeriesAugmenter",
    "SensorModel",
    "single_deficit_grid",
]

DEFICIT_NAMES: tuple[str, ...] = (
    "rain",
    "darkness",
    "haze",
    "backlight_natural",
    "backlight_artificial",
    "dirt_sign",
    "dirt_lens",
    "steamed_lens",
    "motion_blur",
)
"""The nine quality deficits of the paper's augmentation framework."""

N_DEFICITS = len(DEFICIT_NAMES)

VARYING_DEFICITS: tuple[str, ...] = ("motion_blur", "backlight_artificial")
"""Deficits that may change within a series (the rest stay constant)."""

_DEFICIT_INDEX = {name: i for i, name in enumerate(DEFICIT_NAMES)}


class IntensityLevel(Enum):
    """The three augmentation intensities used for the training grid."""

    LOW = 0.25
    MEDIUM = 0.55
    HIGH = 0.85


@dataclass(frozen=True)
class DeficitProfile:
    """Intensities of all nine deficits for one situation.

    Attributes
    ----------
    intensities:
        Array of nine floats in ``[0, 1]``, ordered as
        :data:`DEFICIT_NAMES`.
    """

    intensities: np.ndarray = field(
        default_factory=lambda: np.zeros(N_DEFICITS, dtype=float)
    )

    def __post_init__(self) -> None:
        arr = np.asarray(self.intensities, dtype=float)
        if arr.shape != (N_DEFICITS,):
            raise ValidationError(
                f"a deficit profile needs {N_DEFICITS} intensities, got shape {arr.shape}"
            )
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValidationError("deficit intensities must lie in [0, 1]")
        object.__setattr__(self, "intensities", arr)

    @classmethod
    def clean(cls) -> "DeficitProfile":
        """A profile with every deficit at zero."""
        return cls(np.zeros(N_DEFICITS, dtype=float))

    @classmethod
    def from_mapping(cls, values: dict[str, float]) -> "DeficitProfile":
        """Build a profile from a name -> intensity mapping (rest zero)."""
        arr = np.zeros(N_DEFICITS, dtype=float)
        for name, value in values.items():
            if name not in _DEFICIT_INDEX:
                raise ValidationError(
                    f"unknown deficit {name!r}; expected one of {DEFICIT_NAMES}"
                )
            arr[_DEFICIT_INDEX[name]] = value
        return cls(arr)

    def get(self, name: str) -> float:
        """Return the intensity of the named deficit."""
        try:
            return float(self.intensities[_DEFICIT_INDEX[name]])
        except KeyError:
            raise ValidationError(
                f"unknown deficit {name!r}; expected one of {DEFICIT_NAMES}"
            ) from None

    def with_deficit(self, name: str, value: float) -> "DeficitProfile":
        """Return a copy with one deficit set to ``value``."""
        if name not in _DEFICIT_INDEX:
            raise ValidationError(
                f"unknown deficit {name!r}; expected one of {DEFICIT_NAMES}"
            )
        arr = self.intensities.copy()
        arr[_DEFICIT_INDEX[name]] = value
        return DeficitProfile(arr)

    def total_severity(self) -> float:
        """Sum of all intensities -- a crude overall degradation measure."""
        return float(self.intensities.sum())

    def as_mapping(self) -> dict[str, float]:
        """Return the profile as a name -> intensity dictionary."""
        return {name: float(v) for name, v in zip(DEFICIT_NAMES, self.intensities)}


def single_deficit_grid(
    levels: tuple[IntensityLevel, ...] = (
        IntensityLevel.LOW,
        IntensityLevel.MEDIUM,
        IntensityLevel.HIGH,
    ),
    include_clean: bool = True,
) -> list[DeficitProfile]:
    """The paper's training-augmentation grid.

    "The training data was augmented for each quality deficit with low,
    medium, and high intensity" -- one deficit active at a time, at each of
    the three levels, yielding ``9 * 3 = 27`` profiles (plus the clean
    original when ``include_clean``).
    """
    profiles: list[DeficitProfile] = []
    if include_clean:
        profiles.append(DeficitProfile.clean())
    for name in DEFICIT_NAMES:
        for level in levels:
            profiles.append(DeficitProfile.from_mapping({name: level.value}))
    return profiles


class SeriesAugmenter:
    """Propagates a deficit profile through the frames of a series.

    Constant deficits keep their situation value for every frame; the two
    varying deficits (motion blur, artificial backlight) follow a clipped
    random walk around the situation value, reproducing the paper's note
    that "the conditions might change within the series" for exactly these
    two deficits.

    Parameters
    ----------
    variation_scale:
        Standard deviation of the per-frame random-walk step for the
        varying deficits.
    """

    def __init__(self, variation_scale: float = 0.08) -> None:
        if variation_scale < 0:
            raise ValidationError(
                f"variation_scale must be >= 0, got {variation_scale}"
            )
        self.variation_scale = variation_scale

    def propagate(
        self, profile: DeficitProfile, n_frames: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return per-frame intensities of shape ``(n_frames, 9)``.

        Parameters
        ----------
        profile:
            The situation-level deficit profile.
        n_frames:
            Number of frames in the series.
        rng:
            Randomness source for the varying deficits.
        """
        if n_frames < 1:
            raise ValidationError(f"n_frames must be >= 1, got {n_frames}")
        frames = np.tile(profile.intensities, (n_frames, 1))
        for name in VARYING_DEFICITS:
            col = _DEFICIT_INDEX[name]
            steps = rng.normal(0.0, self.variation_scale, size=n_frames)
            walk = profile.intensities[col] + np.cumsum(steps)
            frames[:, col] = np.clip(walk, 0.0, 1.0)
        return frames


class SensorModel:
    """Turns true deficit intensities into runtime-observable quality factors.

    The uncertainty wrapper never sees ground-truth deficits; it sees sensor
    readings (rain sensor, light sensor, ...) which measure the deficits with
    noise.  The sensed vector also includes the apparent sign size in pixels
    (normalised), which is observable from the detection bounding box.

    Parameters
    ----------
    noise_scale:
        Standard deviation of the additive Gaussian measurement noise on
        each deficit intensity.
    size_norm:
        Pixel size that maps to a sensed size signal of 1.0.
    """

    #: Names of the sensed quality-factor columns, in order.
    SIGNAL_NAMES: tuple[str, ...] = DEFICIT_NAMES + ("apparent_size",)

    def __init__(self, noise_scale: float = 0.05, size_norm: float = 200.0) -> None:
        if noise_scale < 0:
            raise ValidationError(f"noise_scale must be >= 0, got {noise_scale}")
        if size_norm <= 0:
            raise ValidationError(f"size_norm must be > 0, got {size_norm}")
        self.noise_scale = noise_scale
        self.size_norm = size_norm

    @property
    def n_signals(self) -> int:
        """Number of sensed quality-factor columns."""
        return len(self.SIGNAL_NAMES)

    def sense(
        self,
        deficit_frames: np.ndarray,
        sizes_px: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return sensed signals of shape ``(n_frames, n_signals)``.

        Parameters
        ----------
        deficit_frames:
            True intensities, shape ``(n_frames, 9)``.
        sizes_px:
            Apparent sign sizes in pixels, shape ``(n_frames,)``.
        rng:
            Randomness source for measurement noise.
        """
        deficit_frames = np.asarray(deficit_frames, dtype=float)
        sizes_px = np.asarray(sizes_px, dtype=float)
        if deficit_frames.ndim != 2 or deficit_frames.shape[1] != N_DEFICITS:
            raise ValidationError(
                f"deficit_frames must have shape (n, {N_DEFICITS}), got {deficit_frames.shape}"
            )
        if sizes_px.shape != (deficit_frames.shape[0],):
            raise ValidationError(
                "sizes_px must be one-dimensional and aligned with deficit_frames"
            )
        noise = rng.normal(0.0, self.noise_scale, size=deficit_frames.shape)
        sensed = np.clip(deficit_frames + noise, 0.0, 1.0)
        size_signal = np.clip(sizes_px / self.size_norm, 0.0, 1.5)[:, None]
        return np.hstack([sensed, size_signal])
