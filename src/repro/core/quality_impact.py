"""Quality impact model: decision tree + calibration + statistical guarantees.

The quality impact model (QIM) decomposes the target application scope into
regions of similar uncertainty using a CART decision tree over the quality
factors (trained on "is the DDM outcome wrong?" labels), then *calibrates*
the tree on held-out data:

1. leaves are pruned so that every leaf retains at least
   ``min_calibration_samples`` calibration cases (paper: 200);
2. each leaf gets a one-sided Clopper-Pearson upper bound on its true error
   probability at level ``confidence`` (paper: 0.999).

At runtime a case descends to its leaf and receives that leaf's bound as its
dependable uncertainty estimate.  The tree structure stays transparent and
reviewable via :meth:`QualityImpactModel.export_text`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotCalibratedError, NotFittedError, ValidationError
from repro.stats import binomial as _binomial
from repro.trees.cart import DecisionTreeClassifier
from repro.trees.export import export_text as _export_text
from repro.trees.pruning import prune_to_min_samples

__all__ = ["QualityImpactModel", "BOUND_FUNCTIONS"]

BOUND_FUNCTIONS = {
    "clopper_pearson": _binomial.clopper_pearson_upper,
    "wilson": _binomial.wilson_upper,
    "jeffreys": _binomial.jeffreys_upper,
    "hoeffding": _binomial.hoeffding_upper,
}
"""Selectable upper-bound constructions for the per-leaf guarantees."""


class QualityImpactModel:
    """Tree-based, calibrated estimator of input-quality-related uncertainty.

    Parameters
    ----------
    max_depth:
        Depth limit of the CART tree (paper: 8).
    criterion:
        Split criterion, ``"gini"`` (paper) or ``"entropy"``.
    min_calibration_samples:
        Minimum calibration cases per leaf after pruning (paper: 200).
    confidence:
        One-sided confidence level of the per-leaf bounds (paper: 0.999).
    bound:
        Which bound construction to use (see :data:`BOUND_FUNCTIONS`).
    min_samples_leaf:
        Training-time minimum samples per leaf (growth constraint).
    """

    def __init__(
        self,
        max_depth: int = 8,
        criterion: str = "gini",
        min_calibration_samples: int = 200,
        confidence: float = 0.999,
        bound: str = "clopper_pearson",
        min_samples_leaf: int = 1,
    ) -> None:
        if min_calibration_samples < 1:
            raise ValidationError(
                f"min_calibration_samples must be >= 1, got {min_calibration_samples}"
            )
        if not 0.0 < confidence < 1.0:
            raise ValidationError(
                f"confidence must lie strictly between 0 and 1, got {confidence}"
            )
        if bound not in BOUND_FUNCTIONS:
            raise ValidationError(
                f"unknown bound {bound!r}; expected one of {sorted(BOUND_FUNCTIONS)}"
            )
        self.max_depth = max_depth
        self.criterion = criterion
        self.min_calibration_samples = min_calibration_samples
        self.confidence = confidence
        self.bound = bound
        self.min_samples_leaf = min_samples_leaf
        self._tree: DecisionTreeClassifier | None = None
        self._calibrated_tree: DecisionTreeClassifier | None = None
        self._leaf_upper: np.ndarray | None = None
        self._leaf_point: np.ndarray | None = None
        self._leaf_counts: np.ndarray | None = None
        self._leaf_failures: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training and calibration
    # ------------------------------------------------------------------
    def fit(self, quality_features, wrong) -> "QualityImpactModel":
        """Grow the decision tree on training-time failure labels.

        Parameters
        ----------
        quality_features:
            Feature matrix over the quality factors, shape ``(n, d)``.
        wrong:
            Binary indicators: 1 where the wrapped model's outcome was
            wrong on the corresponding training case.
        """
        wrong = self._check_binary(wrong)
        tree = DecisionTreeClassifier(
            max_depth=self.max_depth,
            criterion=self.criterion,
            min_samples_leaf=self.min_samples_leaf,
        )
        tree.fit(np.asarray(quality_features, dtype=float), wrong)
        self._tree = tree
        self._calibrated_tree = None
        self._leaf_upper = None
        return self

    def calibrate(self, quality_features, wrong) -> "QualityImpactModel":
        """Prune on calibration data and compute per-leaf guarantees.

        Parameters
        ----------
        quality_features:
            Calibration feature matrix (held out from training).
        wrong:
            Binary failure indicators on the calibration cases.
        """
        if self._tree is None:
            raise NotFittedError("fit() must run before calibrate()")
        X = np.asarray(quality_features, dtype=float)
        wrong = self._check_binary(wrong)
        if X.shape[0] != wrong.size:
            raise ValidationError("quality_features and wrong must align")

        pruned = prune_to_min_samples(self._tree, X, self.min_calibration_samples)
        leaves = pruned.apply(X)
        n_nodes = pruned.node_count_
        counts = np.bincount(leaves, minlength=n_nodes).astype(float)
        failures = np.bincount(leaves, weights=wrong, minlength=n_nodes)

        upper = np.ones(n_nodes, dtype=float)
        point = np.ones(n_nodes, dtype=float)
        bound_fn = BOUND_FUNCTIONS[self.bound]
        supported = counts > 0
        upper[supported] = bound_fn(
            failures[supported], counts[supported], self.confidence
        )
        point[supported] = failures[supported] / counts[supported]

        self._calibrated_tree = pruned
        self._leaf_upper = upper
        self._leaf_point = point
        self._leaf_counts = counts.astype(np.int64)
        self._leaf_failures = failures.astype(np.int64)
        return self

    @staticmethod
    def _check_binary(wrong) -> np.ndarray:
        arr = np.asarray(wrong, dtype=float).ravel()
        if arr.size == 0:
            raise ValidationError("need at least one case")
        if not np.all(np.isin(arr, (0.0, 1.0))):
            raise ValidationError("wrong must be binary indicators (0 or 1)")
        return arr.astype(np.int64)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _require_calibrated(self) -> DecisionTreeClassifier:
        if self._calibrated_tree is None or self._leaf_upper is None:
            raise NotCalibratedError(
                "the quality impact model provides dependable estimates only "
                "after calibrate(); call it with held-out data first"
            )
        return self._calibrated_tree

    def estimate_uncertainty(self, quality_features) -> np.ndarray:
        """Dependable (upper-bounded) uncertainty per case."""
        tree = self._require_calibrated()
        leaves = tree.apply(np.asarray(quality_features, dtype=float))
        return self._leaf_upper[leaves]

    def point_uncertainty(self, quality_features) -> np.ndarray:
        """Empirical (non-guaranteed) calibration error rate per case."""
        tree = self._require_calibrated()
        leaves = tree.apply(np.asarray(quality_features, dtype=float))
        return self._leaf_point[leaves]

    def leaf_assignments(self, quality_features) -> np.ndarray:
        """Leaf index per case (for transparency/debugging)."""
        tree = self._require_calibrated()
        return tree.apply(np.asarray(quality_features, dtype=float))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        """Whether dependable estimates are available."""
        return self._calibrated_tree is not None

    @property
    def n_leaves(self) -> int:
        """Number of leaves of the calibrated tree."""
        return int(self._require_calibrated().get_n_leaves())

    @property
    def min_guaranteed_uncertainty(self) -> float:
        """Smallest uncertainty any leaf can certify (paper Fig. 5's 0.0072)."""
        self._require_calibrated()
        leaf_ids = self._calibrated_tree.leaf_ids()
        return float(np.min(self._leaf_upper[leaf_ids]))

    def leaf_table(self) -> list[dict]:
        """Per-leaf summary: id, calibration count, failures, bound."""
        tree = self._require_calibrated()
        rows = []
        for leaf in tree.leaf_ids():
            rows.append(
                {
                    "leaf": int(leaf),
                    "calibration_samples": int(self._leaf_counts[leaf]),
                    "calibration_failures": int(self._leaf_failures[leaf]),
                    "point_uncertainty": float(self._leaf_point[leaf]),
                    "guaranteed_uncertainty": float(self._leaf_upper[leaf]),
                }
            )
        rows.sort(key=lambda r: r["guaranteed_uncertainty"])
        return rows

    def export_text(self, feature_names=None, max_depth: int | None = None) -> str:
        """Human-readable tree with per-leaf guarantees (expert review)."""
        tree = self._require_calibrated()
        annotations = {
            int(leaf): f"u <= {self._leaf_upper[leaf]:.4f} "
            f"(n={int(self._leaf_counts[leaf])})"
            for leaf in tree.leaf_ids()
        }
        return _export_text(
            tree,
            feature_names=feature_names,
            leaf_annotations=annotations,
            max_depth=max_depth,
        )
