"""The classical (stateless) uncertainty wrapper.

The wrapper pattern (Fig. 1 of the paper): a data-driven component whose
outcome is enriched with a dependable uncertainty estimate.  The wrapper
treats the DDM as a black box, evaluates the runtime quality factors with a
calibrated quality impact model, optionally folds in a scope-compliance
estimate, and emits ``(outcome, uncertainty)`` per input.

Stateless means: the estimate :math:`u_i` depends only on the input at
timestep :math:`t_i`.  The timeseries-aware extension lives in
:mod:`repro.core.timeseries_wrapper`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combination import combine_uncertainties
from repro.core.quality_impact import QualityImpactModel
from repro.core.scope import ScopeComplianceModel
from repro.exceptions import ValidationError

__all__ = ["WrappedOutcome", "UncertaintyWrapper"]


@dataclass(frozen=True)
class WrappedOutcome:
    """A DDM outcome enriched with a dependable uncertainty estimate.

    Attributes
    ----------
    outcome:
        The DDM's predicted class.
    uncertainty:
        Combined dependable uncertainty (quality and scope).
    quality_uncertainty:
        The quality-impact component alone.
    scope_incompliance:
        The scope-compliance component alone (0 when no scope model runs).
    """

    outcome: int
    uncertainty: float
    quality_uncertainty: float
    scope_incompliance: float

    @property
    def certainty(self) -> float:
        """Convenience: ``1 - uncertainty``."""
        return 1.0 - self.uncertainty


class UncertaintyWrapper:
    """Wraps a black-box DDM with dependable uncertainty estimation.

    Parameters
    ----------
    ddm:
        Any object with ``predict(batch) -> labels``
        (:class:`repro.models.ddm.DataDrivenModel`).
    quality_impact_model:
        The tree-based uncertainty estimator; constructed with paper
        defaults when omitted.
    scope_model:
        Optional scope-compliance model.
    """

    def __init__(
        self,
        ddm,
        quality_impact_model: QualityImpactModel | None = None,
        scope_model: ScopeComplianceModel | None = None,
    ) -> None:
        if not hasattr(ddm, "predict"):
            raise ValidationError("ddm must expose a predict() method")
        self.ddm = ddm
        self.quality_impact_model = quality_impact_model or QualityImpactModel()
        self.scope_model = scope_model

    # ------------------------------------------------------------------
    # Training / calibration
    # ------------------------------------------------------------------
    def fit(self, model_inputs, quality_features, labels) -> "UncertaintyWrapper":
        """Train the quality impact model against observed DDM failures.

        Runs the DDM on ``model_inputs``, derives the binary failure labels
        by comparison with ``labels``, and grows the decision tree on the
        quality features.
        """
        wrong = self._failures(model_inputs, labels)
        self.quality_impact_model.fit(quality_features, wrong)
        return self

    def calibrate(self, model_inputs, quality_features, labels) -> "UncertaintyWrapper":
        """Calibrate the quality impact model on held-out data."""
        wrong = self._failures(model_inputs, labels)
        self.quality_impact_model.calibrate(quality_features, wrong)
        return self

    def _failures(self, model_inputs, labels) -> np.ndarray:
        predictions = np.asarray(self.ddm.predict(model_inputs))
        labels = np.asarray(labels)
        if predictions.shape != labels.shape:
            raise ValidationError(
                "DDM predictions and labels must align, got "
                f"{predictions.shape} vs {labels.shape}"
            )
        return (predictions != labels).astype(np.int64)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def apply_batch(
        self, model_inputs, quality_features
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised inference: ``(outcomes, uncertainties)`` for a batch.

        Scope compliance is not evaluated on the batch path (the study
        keeps all data in scope); use :meth:`apply` for single cases with
        scope factors.
        """
        outcomes = np.asarray(self.ddm.predict(model_inputs))
        uncertainties = self.quality_impact_model.estimate_uncertainty(
            quality_features
        )
        if outcomes.shape[0] != uncertainties.shape[0]:
            raise ValidationError(
                "model_inputs and quality_features must describe the same cases"
            )
        return outcomes, uncertainties

    def apply(
        self,
        model_input,
        quality_features,
        scope_factors: dict[str, float] | None = None,
    ) -> WrappedOutcome:
        """Wrap a single case; returns the enriched outcome.

        Parameters
        ----------
        model_input:
            One input row for the DDM (1-D; batched internally).
        quality_features:
            The stateless quality-factor values for this case (1-D).
        scope_factors:
            Named scope-factor values; evaluated only when the wrapper has
            a scope model.
        """
        model_input = np.atleast_2d(np.asarray(model_input, dtype=float))
        quality_features = np.atleast_2d(np.asarray(quality_features, dtype=float))
        if model_input.shape[0] != 1 or quality_features.shape[0] != 1:
            raise ValidationError("apply() wraps exactly one case; use apply_batch()")
        outcome = int(np.asarray(self.ddm.predict(model_input))[0])
        u_quality = float(
            self.quality_impact_model.estimate_uncertainty(quality_features)[0]
        )
        u_scope = 0.0
        if self.scope_model is not None:
            if scope_factors is None:
                raise ValidationError(
                    "this wrapper has a scope model; scope_factors are required"
                )
            u_scope = self.scope_model.incompliance_probability(scope_factors)
        return WrappedOutcome(
            outcome=outcome,
            uncertainty=combine_uncertainties(u_quality, u_scope),
            quality_uncertainty=u_quality,
            scope_incompliance=u_scope,
        )
