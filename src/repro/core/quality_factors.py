"""Quality factors: stateless QFs and the paper's four timeseries-aware taQFs.

The quality impact model consumes a feature vector per case.  For the
stateless wrapper these are the runtime-observable *quality factors* (sensor
readings such as rain intensity, ambient light, apparent sign size).  The
timeseries-aware wrapper appends the four *timeseries-aware quality factors*
computed from the buffer:

* **taQF1 ratio** -- share of buffered outcomes agreeing with the current
  fused outcome;
* **taQF2 length** -- number of timesteps in the current series so far;
* **taQF3 size** -- number of unique outcomes in the buffer;
* **taQF4 certainty** -- cumulative certainty of the outcomes agreeing with
  the fused outcome (disagreeing outcomes contribute zero).

The factors are deliberately use-case independent: they only look at the
outcome/uncertainty series, never at TSR specifics.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.buffer import TimeseriesBuffer
from repro.core.ragged import RaggedBatch, segment_class_counts
from repro.exceptions import ValidationError

__all__ = [
    "taqf_ratio",
    "taqf_length",
    "taqf_unique_count",
    "taqf_cumulative_certainty",
    "TAQF_REGISTRY",
    "TAQF_NAMES",
    "compute_taqf_vector",
    "compute_taqf_matrix",
    "QualityFactorLayout",
]


def _check_series(outcomes: Sequence[int]) -> list[int]:
    if len(outcomes) == 0:
        raise ValidationError("timeseries-aware factors need at least one outcome")
    return [int(o) for o in outcomes]


def taqf_ratio(outcomes: Sequence[int], fused_outcome: int) -> float:
    """taQF1: fraction of outcomes in conformity with the fused outcome.

    ``(1 / (i+1)) * |{j : o_j == o_i^(if)}|`` -- the more often the fused
    outcome was predicted within the series, the more certainty.
    """
    outcomes = _check_series(outcomes)
    fused = int(fused_outcome)
    return sum(1 for o in outcomes if o == fused) / len(outcomes)


def taqf_length(outcomes: Sequence[int]) -> float:
    """taQF2: length ``i + 1`` of the current timeseries prefix."""
    return float(len(_check_series(outcomes)))


def taqf_unique_count(outcomes: Sequence[int]) -> float:
    """taQF3: number of distinct outcomes observed in the current series.

    Higher variety signals higher uncertainty.
    """
    return float(len(set(_check_series(outcomes))))


def taqf_cumulative_certainty(
    outcomes: Sequence[int],
    uncertainties: Sequence[float],
    fused_outcome: int,
) -> float:
    """taQF4: summed certainty of outcomes agreeing with the fused outcome.

    ``sum_j c_j`` with ``c_j = 1 - u_j`` when ``o_j == o_i^(if)`` and 0
    otherwise.
    """
    outcomes = _check_series(outcomes)
    if len(uncertainties) != len(outcomes):
        raise ValidationError(
            "uncertainties must align with outcomes, got "
            f"{len(uncertainties)} vs {len(outcomes)}"
        )
    fused = int(fused_outcome)
    total = 0.0
    for outcome, uncertainty in zip(outcomes, uncertainties):
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(f"uncertainty {uncertainty!r} outside [0, 1]")
        if outcome == fused:
            total += 1.0 - uncertainty
    return total


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _ratio_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_ratio(buffer.outcomes, fused_outcome)


def _length_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_length(buffer.outcomes)


def _unique_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_unique_count(buffer.outcomes)


def _certainty_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_cumulative_certainty(
        buffer.outcomes, buffer.uncertainties, fused_outcome
    )


TAQF_REGISTRY: dict[str, Callable[[TimeseriesBuffer, int], float]] = {
    "ratio": _ratio_from_buffer,
    "length": _length_from_buffer,
    "size": _unique_from_buffer,
    "certainty": _certainty_from_buffer,
}
"""Name -> computation for each timeseries-aware quality factor."""

TAQF_NAMES: tuple[str, ...] = tuple(TAQF_REGISTRY)
"""Canonical ordering of the four taQFs: ratio, length, size, certainty."""

_BUILTIN_TAQF_IMPLS = dict(TAQF_REGISTRY)
"""The original built-in callables, for detecting registry overrides."""


def _names_use_builtin_kernel(names: Sequence[str]) -> bool:
    """Whether every name still maps to its original built-in factor.

    The batched kernel hard-codes the four built-in factors; any custom
    registration -- a new name or an override of a built-in -- must keep
    dispatching through :data:`TAQF_REGISTRY`.
    """
    return all(
        name in TAQF_NAMES
        and TAQF_REGISTRY.get(name) is _BUILTIN_TAQF_IMPLS[name]
        for name in names
    )


def compute_taqf_vector(
    buffer: TimeseriesBuffer,
    fused_outcome: int,
    names: Sequence[str] = TAQF_NAMES,
) -> np.ndarray:
    """Evaluate the selected taQFs against the buffer, in the given order.

    For the built-in factors this delegates to :func:`compute_taqf_matrix`
    with a single-segment batch, so scalar and batched callers run the
    identical kernel and agree bitwise (the pure-Python factor functions
    above are the documented reference semantics; float summation order
    may differ by ~1 ulp).  Names registered into :data:`TAQF_REGISTRY`
    beyond the built-ins dispatch through the registry.

    Parameters
    ----------
    buffer:
        The wrapper's timeseries buffer (must contain the current step).
    fused_outcome:
        The current fused outcome :math:`o_i^{(if)}`.
    names:
        Which factors to compute; any subset of :data:`TAQF_REGISTRY`.
    """
    if buffer.is_empty:
        raise ValidationError("timeseries-aware factors need at least one outcome")
    if _names_use_builtin_kernel(names):
        batch = RaggedBatch.from_buffers([buffer])
        return compute_taqf_matrix(batch, np.array([int(fused_outcome)]), names)[0]
    values = np.empty(len(names), dtype=float)
    for i, name in enumerate(names):
        try:
            fn = TAQF_REGISTRY[name]
        except KeyError:
            raise ValidationError(
                f"unknown taQF {name!r}; expected one of {tuple(TAQF_REGISTRY)}"
            ) from None
        values[i] = fn(buffer, fused_outcome)
    return values


def compute_taqf_matrix(
    batch: RaggedBatch,
    fused: np.ndarray,
    names: Sequence[str] = TAQF_NAMES,
    vote=None,
) -> np.ndarray:
    """Evaluate the selected taQFs for every segment of a ragged batch.

    The batched counterpart of :func:`compute_taqf_vector`: one row per
    segment, one column per selected factor, computed with segmented numpy
    kernels (``bincount`` counting, ``np.add.reduceat`` certainty sums).
    The kernels reduce each segment independently of its neighbours, so a
    segment evaluated alone and the same segment inside a large batch get
    bitwise-identical factor values -- the property the single-stream
    wrapper, the offline trace path, and the streaming engine rely on to
    agree exactly.

    Parameters
    ----------
    batch:
        The buffered outcome/uncertainty segments (one per stream or
        prefix).
    fused:
        The fused outcome per segment, aligned with the batch.
    names:
        Which factors to compute; any subset of :data:`TAQF_NAMES`.
    vote:
        Optional :class:`~repro.fusion.vectorized.VoteResult` from fusing
        *this* batch into *this* ``fused`` array; its per-segment counts
        are reused so the ratio/size factors skip a second counting pass.
    """
    fused = np.asarray(fused, dtype=np.int64).ravel()
    if fused.size != batch.n_segments:
        raise ValidationError(
            f"fused outcomes must align with segments, got {fused.size} "
            f"vs {batch.n_segments}"
        )
    # The batched kernel implements exactly the four built-in factors;
    # custom TAQF_REGISTRY entries must go through the scalar registry
    # dispatch (compute_taqf_vector falls back to it automatically).
    unknown = [n for n in names if n not in TAQF_NAMES]
    if unknown:
        raise ValidationError(
            f"taQF names {unknown} are not supported by the batched kernel; "
            f"expected a subset of {TAQF_NAMES}"
        )

    values = np.empty((batch.n_segments, len(names)), dtype=float)
    need_counts = any(n in ("ratio", "size") for n in names)
    if need_counts:
        if vote is not None:
            fused_counts = vote.fused_counts
            unique_counts = vote.unique_counts
        else:
            codes, counts = segment_class_counts(batch)
            fused_code = np.minimum(np.searchsorted(codes, fused), codes.size - 1)
            fused_counts = np.where(
                codes[fused_code] == fused,
                counts[np.arange(batch.n_segments), fused_code],
                0,
            )
            unique_counts = np.count_nonzero(counts, axis=1)
    if "certainty" in names:
        agree = batch.outcomes == batch.expand(fused)
        contributions = np.where(agree, 1.0 - batch.uncertainties, 0.0)
        cumulative = np.add.reduceat(contributions, batch.offsets)

    for j, name in enumerate(names):
        if name == "ratio":
            values[:, j] = fused_counts / batch.lengths
        elif name == "length":
            values[:, j] = batch.lengths.astype(float)
        elif name == "size":
            values[:, j] = unique_counts.astype(float)
        else:  # "certainty"
            values[:, j] = cumulative
    return values


class QualityFactorLayout:
    """Describes the feature-vector layout fed to a quality impact model.

    A layout is the ordered concatenation of the stateless quality-factor
    names with the selected timeseries-aware factor names.  It is shared
    between training-time feature-table construction and runtime inference
    so both always agree on column order.

    Parameters
    ----------
    stateless_names:
        Names of the stateless quality-factor columns (e.g. the sensed
        deficits plus apparent size).
    taqf_names:
        The selected timeseries-aware factors (possibly empty for a purely
        stateless layout).
    """

    def __init__(
        self,
        stateless_names: Sequence[str],
        taqf_names: Sequence[str] = (),
    ) -> None:
        stateless = tuple(str(n) for n in stateless_names)
        selected = tuple(str(n) for n in taqf_names)
        if len(set(stateless)) != len(stateless):
            raise ValidationError("stateless quality-factor names must be unique")
        unknown = [n for n in selected if n not in TAQF_REGISTRY]
        if unknown:
            raise ValidationError(
                f"unknown taQF names {unknown}; expected a subset of {TAQF_NAMES}"
            )
        if len(set(selected)) != len(selected):
            raise ValidationError("taQF names must be unique")
        overlap = set(stateless) & set(selected)
        if overlap:
            raise ValidationError(
                f"stateless and timeseries-aware names overlap: {sorted(overlap)}"
            )
        self.stateless_names = stateless
        self.taqf_names = selected

    @property
    def feature_names(self) -> tuple[str, ...]:
        """All column names in order (stateless first, then taQFs)."""
        return self.stateless_names + self.taqf_names

    @property
    def n_features(self) -> int:
        """Total number of feature columns."""
        return len(self.feature_names)

    def assemble(
        self,
        stateless_values: np.ndarray,
        buffer: TimeseriesBuffer | None = None,
        fused_outcome: int | None = None,
    ) -> np.ndarray:
        """Build one feature row from stateless values plus buffer state.

        Parameters
        ----------
        stateless_values:
            Values for the stateless columns, in layout order.
        buffer / fused_outcome:
            Required when the layout includes taQFs.
        """
        stateless_values = np.asarray(stateless_values, dtype=float).ravel()
        if stateless_values.size != len(self.stateless_names):
            raise ValidationError(
                f"expected {len(self.stateless_names)} stateless values, "
                f"got {stateless_values.size}"
            )
        if not self.taqf_names:
            return stateless_values.copy()
        if buffer is None or fused_outcome is None:
            raise ValidationError(
                "this layout includes timeseries-aware factors; "
                "buffer and fused_outcome are required"
            )
        # Same kernel as the batched path (single-segment batch), so a row
        # assembled here is bitwise identical to the same row inside an
        # assemble_batch call.
        ta = compute_taqf_vector(buffer, fused_outcome, self.taqf_names)
        return np.concatenate([stateless_values, ta])

    def assemble_batch(
        self,
        stateless_values: np.ndarray,
        batch: RaggedBatch | None = None,
        fused_outcomes: np.ndarray | None = None,
        vote=None,
    ) -> np.ndarray:
        """Build one feature row per segment of a ragged batch.

        The batched counterpart of :meth:`assemble`, used by the streaming
        engine (one segment per stream) and the offline trace path (one
        segment per series prefix).

        Parameters
        ----------
        stateless_values:
            Stateless column values, shape ``(n_segments, n_stateless)``.
        batch / fused_outcomes:
            Required when the layout includes taQFs; ``fused_outcomes``
            holds the fused outcome per segment.
        vote:
            Optional ``VoteResult`` from the fusion step (see
            :func:`compute_taqf_matrix`).
        """
        stateless_values = np.atleast_2d(np.asarray(stateless_values, dtype=float))
        if stateless_values.shape[1] != len(self.stateless_names):
            raise ValidationError(
                f"expected {len(self.stateless_names)} stateless columns, "
                f"got {stateless_values.shape[1]}"
            )
        if not self.taqf_names:
            return stateless_values.copy()
        if batch is None or fused_outcomes is None:
            raise ValidationError(
                "this layout includes timeseries-aware factors; "
                "batch and fused_outcomes are required"
            )
        if stateless_values.shape[0] != batch.n_segments:
            raise ValidationError(
                f"stateless rows must align with segments, got "
                f"{stateless_values.shape[0]} vs {batch.n_segments}"
            )
        fused_outcomes = np.asarray(fused_outcomes, dtype=np.int64).ravel()
        if not _names_use_builtin_kernel(self.taqf_names):
            return self._assemble_rows_via_registry(
                stateless_values, batch, fused_outcomes
            )
        ta = compute_taqf_matrix(batch, fused_outcomes, self.taqf_names, vote)
        return np.hstack([stateless_values, ta])

    def _assemble_rows_via_registry(
        self,
        stateless_values: np.ndarray,
        batch: RaggedBatch,
        fused_outcomes: np.ndarray,
    ) -> np.ndarray:
        """Per-segment scalar fallback for layouts with custom taQFs.

        Factors registered into :data:`TAQF_REGISTRY` beyond the built-ins
        only exist as ``(buffer, fused) -> float`` callables, so each
        segment is replayed into a scratch buffer and assembled through
        the scalar path.  Slow but faithful; built-in-only layouts (the
        paper's) never take this branch.
        """
        if fused_outcomes.size != batch.n_segments:
            raise ValidationError(
                f"fused outcomes must align with segments, got "
                f"{fused_outcomes.size} vs {batch.n_segments}"
            )
        rows = np.empty((batch.n_segments, self.n_features), dtype=float)
        for i in range(batch.n_segments):
            start = batch.offsets[i]
            stop = start + batch.lengths[i]
            buffer = TimeseriesBuffer()
            for outcome, uncertainty in zip(
                batch.outcomes[start:stop], batch.uncertainties[start:stop]
            ):
                buffer.append(int(outcome), float(uncertainty))
            rows[i] = self.assemble(
                stateless_values[i], buffer, int(fused_outcomes[i])
            )
        return rows
