"""Quality factors: stateless QFs and the paper's four timeseries-aware taQFs.

The quality impact model consumes a feature vector per case.  For the
stateless wrapper these are the runtime-observable *quality factors* (sensor
readings such as rain intensity, ambient light, apparent sign size).  The
timeseries-aware wrapper appends the four *timeseries-aware quality factors*
computed from the buffer:

* **taQF1 ratio** -- share of buffered outcomes agreeing with the current
  fused outcome;
* **taQF2 length** -- number of timesteps in the current series so far;
* **taQF3 size** -- number of unique outcomes in the buffer;
* **taQF4 certainty** -- cumulative certainty of the outcomes agreeing with
  the fused outcome (disagreeing outcomes contribute zero).

The factors are deliberately use-case independent: they only look at the
outcome/uncertainty series, never at TSR specifics.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.buffer import TimeseriesBuffer
from repro.exceptions import ValidationError

__all__ = [
    "taqf_ratio",
    "taqf_length",
    "taqf_unique_count",
    "taqf_cumulative_certainty",
    "TAQF_REGISTRY",
    "TAQF_NAMES",
    "compute_taqf_vector",
    "QualityFactorLayout",
]


def _check_series(outcomes: Sequence[int]) -> list[int]:
    if len(outcomes) == 0:
        raise ValidationError("timeseries-aware factors need at least one outcome")
    return [int(o) for o in outcomes]


def taqf_ratio(outcomes: Sequence[int], fused_outcome: int) -> float:
    """taQF1: fraction of outcomes in conformity with the fused outcome.

    ``(1 / (i+1)) * |{j : o_j == o_i^(if)}|`` -- the more often the fused
    outcome was predicted within the series, the more certainty.
    """
    outcomes = _check_series(outcomes)
    fused = int(fused_outcome)
    return sum(1 for o in outcomes if o == fused) / len(outcomes)


def taqf_length(outcomes: Sequence[int]) -> float:
    """taQF2: length ``i + 1`` of the current timeseries prefix."""
    return float(len(_check_series(outcomes)))


def taqf_unique_count(outcomes: Sequence[int]) -> float:
    """taQF3: number of distinct outcomes observed in the current series.

    Higher variety signals higher uncertainty.
    """
    return float(len(set(_check_series(outcomes))))


def taqf_cumulative_certainty(
    outcomes: Sequence[int],
    uncertainties: Sequence[float],
    fused_outcome: int,
) -> float:
    """taQF4: summed certainty of outcomes agreeing with the fused outcome.

    ``sum_j c_j`` with ``c_j = 1 - u_j`` when ``o_j == o_i^(if)`` and 0
    otherwise.
    """
    outcomes = _check_series(outcomes)
    if len(uncertainties) != len(outcomes):
        raise ValidationError(
            "uncertainties must align with outcomes, got "
            f"{len(uncertainties)} vs {len(outcomes)}"
        )
    fused = int(fused_outcome)
    total = 0.0
    for outcome, uncertainty in zip(outcomes, uncertainties):
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(f"uncertainty {uncertainty!r} outside [0, 1]")
        if outcome == fused:
            total += 1.0 - uncertainty
    return total


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _ratio_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_ratio(buffer.outcomes, fused_outcome)


def _length_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_length(buffer.outcomes)


def _unique_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_unique_count(buffer.outcomes)


def _certainty_from_buffer(buffer: TimeseriesBuffer, fused_outcome: int) -> float:
    return taqf_cumulative_certainty(
        buffer.outcomes, buffer.uncertainties, fused_outcome
    )


TAQF_REGISTRY: dict[str, Callable[[TimeseriesBuffer, int], float]] = {
    "ratio": _ratio_from_buffer,
    "length": _length_from_buffer,
    "size": _unique_from_buffer,
    "certainty": _certainty_from_buffer,
}
"""Name -> computation for each timeseries-aware quality factor."""

TAQF_NAMES: tuple[str, ...] = tuple(TAQF_REGISTRY)
"""Canonical ordering of the four taQFs: ratio, length, size, certainty."""


def compute_taqf_vector(
    buffer: TimeseriesBuffer,
    fused_outcome: int,
    names: Sequence[str] = TAQF_NAMES,
) -> np.ndarray:
    """Evaluate the selected taQFs against the buffer, in the given order.

    Parameters
    ----------
    buffer:
        The wrapper's timeseries buffer (must contain the current step).
    fused_outcome:
        The current fused outcome :math:`o_i^{(if)}`.
    names:
        Which factors to compute; any subset of :data:`TAQF_NAMES`.
    """
    values = np.empty(len(names), dtype=float)
    for i, name in enumerate(names):
        try:
            fn = TAQF_REGISTRY[name]
        except KeyError:
            raise ValidationError(
                f"unknown taQF {name!r}; expected one of {TAQF_NAMES}"
            ) from None
        values[i] = fn(buffer, fused_outcome)
    return values


class QualityFactorLayout:
    """Describes the feature-vector layout fed to a quality impact model.

    A layout is the ordered concatenation of the stateless quality-factor
    names with the selected timeseries-aware factor names.  It is shared
    between training-time feature-table construction and runtime inference
    so both always agree on column order.

    Parameters
    ----------
    stateless_names:
        Names of the stateless quality-factor columns (e.g. the sensed
        deficits plus apparent size).
    taqf_names:
        The selected timeseries-aware factors (possibly empty for a purely
        stateless layout).
    """

    def __init__(
        self,
        stateless_names: Sequence[str],
        taqf_names: Sequence[str] = (),
    ) -> None:
        stateless = tuple(str(n) for n in stateless_names)
        selected = tuple(str(n) for n in taqf_names)
        if len(set(stateless)) != len(stateless):
            raise ValidationError("stateless quality-factor names must be unique")
        unknown = [n for n in selected if n not in TAQF_REGISTRY]
        if unknown:
            raise ValidationError(
                f"unknown taQF names {unknown}; expected a subset of {TAQF_NAMES}"
            )
        if len(set(selected)) != len(selected):
            raise ValidationError("taQF names must be unique")
        overlap = set(stateless) & set(selected)
        if overlap:
            raise ValidationError(
                f"stateless and timeseries-aware names overlap: {sorted(overlap)}"
            )
        self.stateless_names = stateless
        self.taqf_names = selected

    @property
    def feature_names(self) -> tuple[str, ...]:
        """All column names in order (stateless first, then taQFs)."""
        return self.stateless_names + self.taqf_names

    @property
    def n_features(self) -> int:
        """Total number of feature columns."""
        return len(self.feature_names)

    def assemble(
        self,
        stateless_values: np.ndarray,
        buffer: TimeseriesBuffer | None = None,
        fused_outcome: int | None = None,
    ) -> np.ndarray:
        """Build one feature row from stateless values plus buffer state.

        Parameters
        ----------
        stateless_values:
            Values for the stateless columns, in layout order.
        buffer / fused_outcome:
            Required when the layout includes taQFs.
        """
        stateless_values = np.asarray(stateless_values, dtype=float).ravel()
        if stateless_values.size != len(self.stateless_names):
            raise ValidationError(
                f"expected {len(self.stateless_names)} stateless values, "
                f"got {stateless_values.size}"
            )
        if not self.taqf_names:
            return stateless_values.copy()
        if buffer is None or fused_outcome is None:
            raise ValidationError(
                "this layout includes timeseries-aware factors; "
                "buffer and fused_outcome are required"
            )
        ta = compute_taqf_vector(buffer, fused_outcome, self.taqf_names)
        return np.concatenate([stateless_values, ta])
