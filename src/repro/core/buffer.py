"""Timeseries buffer: the state that makes an uncertainty wrapper stateful.

"The first part of the extension is a timeseries buffer that temporarily
stores interim results during each timestep.  The buffer is cleared at the
onset of a new timeseries."

Per timestep the buffer records the momentaneous DDM outcome and its
stateless uncertainty estimate; the information-fusion component and the
timeseries-aware quality model read these prefixes back at every step.

Storage is array-backed: outcomes and uncertainties live in preallocated
numpy arrays with an amortized-O(1) append, and the hot paths (the online
wrapper step, the batched serving engine) read them through the O(1)
``outcomes_view`` / ``uncertainties_view`` slices instead of rebuilding
Python lists.  With ``max_length`` set, the oldest entries slide out by
advancing the window start; the backing arrays are compacted lazily.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EmptyBufferError, ValidationError

__all__ = ["TimeseriesBuffer"]

_INITIAL_CAPACITY = 32


class TimeseriesBuffer:
    """Stores the per-timestep interim results of the current timeseries.

    Parameters
    ----------
    max_length:
        Optional cap on the number of retained timesteps; when exceeded the
        oldest entries are dropped (sliding window).  ``None`` keeps the
        whole series, which matches the paper's study (series of length 10).
    """

    def __init__(self, max_length: int | None = None) -> None:
        if max_length is not None and max_length < 1:
            raise ValidationError(f"max_length must be >= 1 or None, got {max_length}")
        self.max_length = max_length
        # Storage starts small regardless of the window cap (a registry may
        # hold thousands of mostly-short buffers) and grows on demand up to
        # 2 * max_length, at which point the window shift back to the front
        # of the arrays amortizes to O(1) per append.
        capacity = _INITIAL_CAPACITY
        if max_length is not None:
            capacity = min(capacity, 2 * max_length)
        self._out = np.empty(capacity, dtype=np.int64)
        self._unc = np.empty(capacity, dtype=float)
        self._start = 0
        self._end = 0
        self._cache: tuple[list[int], list[float]] | None = None

    def __len__(self) -> int:
        return self._end - self._start

    @property
    def is_empty(self) -> bool:
        """True when no timestep has been recorded since the last reset."""
        return self._end == self._start

    def append(self, outcome: int, uncertainty: float) -> None:
        """Record one timestep's momentaneous outcome and uncertainty."""
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(
                f"uncertainty must lie in [0, 1], got {uncertainty!r}"
            )
        if self._end == self._out.size:
            self._make_room()
        self._out[self._end] = int(outcome)
        self._unc[self._end] = float(uncertainty)
        self._end += 1
        if self.max_length is not None and len(self) > self.max_length:
            self._start += 1
        self._cache = None

    def _make_room(self) -> None:
        """Compact the live window to the front, growing when it is tight.

        Growing whenever the live window exceeds half the capacity (capped
        at ``2 * max_length`` for bounded buffers) guarantees that every
        shift frees at least half the arrays, so appends stay amortized
        O(1) in both the unbounded and the sliding-window regime.
        """
        n = len(self)
        capacity = self._out.size
        target = capacity
        if n > capacity // 2:
            target = capacity * 2
            if self.max_length is not None:
                target = min(target, 2 * self.max_length)
        if target > capacity:
            out = np.empty(target, dtype=np.int64)
            unc = np.empty(target, dtype=float)
            out[:n] = self._out[self._start : self._end]
            unc[:n] = self._unc[self._start : self._end]
            self._out, self._unc = out, unc
        else:  # window drifted to the end; shift it back in place
            self._out[:n] = self._out[self._start : self._end]
            self._unc[:n] = self._unc[self._start : self._end]
        self._start, self._end = 0, n

    def reset(self) -> None:
        """Clear the buffer (onset of a new timeseries)."""
        self._start = 0
        self._end = 0
        self._cache = None

    # ------------------------------------------------------------------
    # Array views (hot path): O(1) slices of the backing storage.
    # ------------------------------------------------------------------
    def outcomes_view(self) -> np.ndarray:
        """Contiguous int64 view of the live outcomes, oldest first.

        Valid until the next ``append``/``reset``; do not mutate.
        """
        return self._out[self._start : self._end]

    def uncertainties_view(self) -> np.ndarray:
        """Contiguous float view of the live uncertainties, oldest first.

        Valid until the next ``append``/``reset``; do not mutate.
        """
        return self._unc[self._start : self._end]

    # ------------------------------------------------------------------
    # List/array accessors (convenience and introspection paths).
    # ------------------------------------------------------------------
    def _lists(self) -> tuple[list[int], list[float]]:
        if self._cache is None:
            self._cache = (
                self.outcomes_view().tolist(),
                self.uncertainties_view().tolist(),
            )
        return self._cache

    @property
    def outcomes(self) -> list[int]:
        """Momentaneous outcomes recorded so far, oldest first (copy)."""
        return self._lists()[0].copy()

    @property
    def uncertainties(self) -> list[float]:
        """Momentaneous uncertainties recorded so far, oldest first (copy)."""
        return self._lists()[1].copy()

    @property
    def certainties(self) -> list[float]:
        """Momentaneous certainties ``c_j = 1 - u_j``, oldest first."""
        return [1.0 - u for u in self._lists()[1]]

    def outcomes_array(self) -> np.ndarray:
        """Outcomes as an int array; raises on an empty buffer."""
        self._require_non_empty()
        return self.outcomes_view().copy()

    def uncertainties_array(self) -> np.ndarray:
        """Uncertainties as a float array; raises on an empty buffer."""
        self._require_non_empty()
        return self.uncertainties_view().copy()

    def last_outcome(self) -> int:
        """The most recent outcome; raises on an empty buffer."""
        self._require_non_empty()
        return int(self._out[self._end - 1])

    # ------------------------------------------------------------------
    # State export / restore (serving snapshots and shard migration).
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Portable buffer state: live-window copies plus the window cap.

        The returned arrays are detached from the buffer's backing storage
        and stay valid after further appends.  Feed the dict back through
        :meth:`from_state` to reconstruct an exactly equivalent buffer.
        """
        return {
            "outcomes": self.outcomes_view().copy(),
            "uncertainties": self.uncertainties_view().copy(),
            "max_length": self.max_length,
        }

    @classmethod
    def from_state(
        cls,
        outcomes,
        uncertainties,
        max_length: int | None = None,
    ) -> "TimeseriesBuffer":
        """Rebuild a buffer from exported state.

        The restored buffer's views are value-identical to the source
        buffer's at export time, and subsequent appends behave exactly as
        they would have on the uninterrupted original (the live window is
        re-anchored at the front of fresh storage, which the sliding-window
        logic never observes).
        """
        out = np.asarray(outcomes, dtype=np.int64).ravel()
        unc = np.asarray(uncertainties, dtype=float).ravel()
        if out.size != unc.size:
            raise ValidationError(
                f"outcomes and uncertainties must align, got {out.size} vs {unc.size}"
            )
        if unc.size and not np.all((unc >= 0.0) & (unc <= 1.0)):  # NaN-rejecting
            raise ValidationError("restored uncertainties must lie in [0, 1]")
        if max_length is not None and out.size > max_length:
            raise ValidationError(
                f"restored window of {out.size} entries exceeds max_length={max_length}"
            )
        buffer = cls(max_length=max_length)
        n = out.size
        if n:
            if n > buffer._out.size:
                buffer._out = np.empty(n, dtype=np.int64)
                buffer._unc = np.empty(n, dtype=float)
            buffer._out[:n] = out
            buffer._unc[:n] = unc
            buffer._end = n
        return buffer

    def _require_non_empty(self) -> None:
        if self.is_empty:
            raise EmptyBufferError(
                "the timeseries buffer is empty; feed at least one timestep first"
            )
