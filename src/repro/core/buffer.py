"""Timeseries buffer: the state that makes an uncertainty wrapper stateful.

"The first part of the extension is a timeseries buffer that temporarily
stores interim results during each timestep.  The buffer is cleared at the
onset of a new timeseries."

Per timestep the buffer records the momentaneous DDM outcome and its
stateless uncertainty estimate; the information-fusion component and the
timeseries-aware quality model read these prefixes back at every step.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EmptyBufferError, ValidationError

__all__ = ["TimeseriesBuffer"]


class TimeseriesBuffer:
    """Stores the per-timestep interim results of the current timeseries.

    Parameters
    ----------
    max_length:
        Optional cap on the number of retained timesteps; when exceeded the
        oldest entries are dropped (sliding window).  ``None`` keeps the
        whole series, which matches the paper's study (series of length 10).
    """

    def __init__(self, max_length: int | None = None) -> None:
        if max_length is not None and max_length < 1:
            raise ValidationError(f"max_length must be >= 1 or None, got {max_length}")
        self.max_length = max_length
        self._outcomes: list[int] = []
        self._uncertainties: list[float] = []

    def __len__(self) -> int:
        return len(self._outcomes)

    @property
    def is_empty(self) -> bool:
        """True when no timestep has been recorded since the last reset."""
        return not self._outcomes

    def append(self, outcome: int, uncertainty: float) -> None:
        """Record one timestep's momentaneous outcome and uncertainty."""
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(
                f"uncertainty must lie in [0, 1], got {uncertainty!r}"
            )
        self._outcomes.append(int(outcome))
        self._uncertainties.append(float(uncertainty))
        if self.max_length is not None and len(self._outcomes) > self.max_length:
            del self._outcomes[0]
            del self._uncertainties[0]

    def reset(self) -> None:
        """Clear the buffer (onset of a new timeseries)."""
        self._outcomes.clear()
        self._uncertainties.clear()

    @property
    def outcomes(self) -> list[int]:
        """Momentaneous outcomes recorded so far, oldest first (copy)."""
        return list(self._outcomes)

    @property
    def uncertainties(self) -> list[float]:
        """Momentaneous uncertainties recorded so far, oldest first (copy)."""
        return list(self._uncertainties)

    @property
    def certainties(self) -> list[float]:
        """Momentaneous certainties ``c_j = 1 - u_j``, oldest first."""
        return [1.0 - u for u in self._uncertainties]

    def outcomes_array(self) -> np.ndarray:
        """Outcomes as an int array; raises on an empty buffer."""
        self._require_non_empty()
        return np.asarray(self._outcomes, dtype=np.int64)

    def uncertainties_array(self) -> np.ndarray:
        """Uncertainties as a float array; raises on an empty buffer."""
        self._require_non_empty()
        return np.asarray(self._uncertainties, dtype=float)

    def last_outcome(self) -> int:
        """The most recent outcome; raises on an empty buffer."""
        self._require_non_empty()
        return self._outcomes[-1]

    def _require_non_empty(self) -> None:
        if not self._outcomes:
            raise EmptyBufferError(
                "the timeseries buffer is empty; feed at least one timestep first"
            )
