"""The timeseries-aware uncertainty wrapper (taUW) -- the paper's contribution.

Architecture (paper Fig. 2): at every timestep the classical stateless
wrapper components run first -- the DDM produces a momentaneous outcome
:math:`o_i`, the stateless quality impact model a momentaneous uncertainty
:math:`u_i`.  Both are appended to the timeseries buffer.  The information-
fusion component then fuses all buffered outcomes into
:math:`o_i^{(if)}`, the timeseries-aware quality model derives the taQFs
from the buffer, and the timeseries-aware quality impact model (taQIM) maps
stateless QFs + taQFs to the dependable uncertainty of the *fused* outcome.

Two entry points are provided:

* :class:`TimeseriesAwareUncertaintyWrapper` -- the online, stateful runtime
  API (``step`` per frame, reset on series onset, optionally driven by the
  tracking substrate);
* :func:`trace_series` -- the vectorised offline path used for training,
  calibration, and the study's evaluation, producing a
  :class:`SeriesTrace` per series.  Both paths share the same factor
  computations, so offline tables and online behaviour agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buffer import TimeseriesBuffer
from repro.core.combination import combine_uncertainties
from repro.core.quality_factors import QualityFactorLayout
from repro.core.quality_impact import QualityImpactModel
from repro.core.ragged import RaggedBatch
from repro.core.scope import ScopeComplianceModel
from repro.exceptions import NotCalibratedError, ValidationError
from repro.fusion.information import InformationFusion, MajorityVote
from repro.fusion.vectorized import fuse_segments

__all__ = [
    "TimeseriesWrappedOutcome",
    "TimeseriesAwareUncertaintyWrapper",
    "SeriesTrace",
    "trace_series",
    "stack_traces",
]

#: Cap on flattened prefix elements per trace chunk (~8 MB of float64);
#: keeps trace_series at O(n) memory for arbitrarily long series.
_PREFIX_CHUNK_ELEMENTS = 1 << 20


@dataclass(frozen=True)
class TimeseriesWrappedOutcome:
    """Result of one taUW timestep.

    Attributes
    ----------
    fused_outcome:
        The information-fused prediction :math:`o_i^{(if)}`.
    fused_uncertainty:
        The taQIM's dependable uncertainty for the fused outcome.
    isolated_outcome:
        The momentaneous DDM prediction :math:`o_i`.
    isolated_uncertainty:
        The stateless wrapper's momentaneous estimate :math:`u_i`.
    timestep:
        Zero-based absolute index within the current series.  Counts every
        processed frame since the series onset, so it keeps growing when a
        ``max_buffer_length`` sliding window caps the buffer.
    scope_incompliance:
        Scope component folded into ``fused_uncertainty`` (0 without a
        scope model).
    """

    fused_outcome: int
    fused_uncertainty: float
    isolated_outcome: int
    isolated_uncertainty: float
    timestep: int
    scope_incompliance: float = 0.0

    @property
    def fused_certainty(self) -> float:
        """Convenience: ``1 - fused_uncertainty``."""
        return 1.0 - self.fused_uncertainty


class TimeseriesAwareUncertaintyWrapper:
    """Online taUW: feed frames one at a time, read fused outcomes back.

    Parameters
    ----------
    ddm:
        Black-box model with ``predict(batch) -> labels``.
    stateless_qim:
        Calibrated quality impact model producing the momentaneous
        :math:`u_i` from the stateless quality factors.
    timeseries_qim:
        Calibrated taQIM over ``layout.feature_names``.
    layout:
        Column layout shared by training and inference (stateless names +
        selected taQFs).
    information_fusion:
        Fusion rule for the buffered outcomes (paper: majority vote).
    scope_model:
        Optional scope-compliance model evaluated per step.
    max_buffer_length:
        Optional sliding-window cap on the buffer.
    """

    def __init__(
        self,
        ddm,
        stateless_qim: QualityImpactModel,
        timeseries_qim: QualityImpactModel,
        layout: QualityFactorLayout,
        information_fusion: InformationFusion | None = None,
        scope_model: ScopeComplianceModel | None = None,
        max_buffer_length: int | None = None,
    ) -> None:
        if not hasattr(ddm, "predict"):
            raise ValidationError("ddm must expose a predict() method")
        if not stateless_qim.is_calibrated:
            raise NotCalibratedError("stateless_qim must be calibrated")
        if not timeseries_qim.is_calibrated:
            raise NotCalibratedError("timeseries_qim must be calibrated")
        self.ddm = ddm
        self.stateless_qim = stateless_qim
        self.timeseries_qim = timeseries_qim
        self.layout = layout
        self.information_fusion = information_fusion or MajorityVote()
        self.scope_model = scope_model
        self.buffer = TimeseriesBuffer(max_length=max_buffer_length)
        self._step_count = 0

    def reset(self) -> None:
        """Clear the buffer (a new physical object is being observed)."""
        self.buffer.reset()
        self._step_count = 0

    @property
    def timestep(self) -> int:
        """Zero-based index of the *next* frame within the current series.

        Tracks the absolute number of frames processed since the series
        onset, independent of the sliding-window cap on the buffer.
        """
        return self._step_count

    def step(
        self,
        model_input,
        stateless_quality_values,
        new_series: bool = False,
        scope_factors: dict[str, float] | None = None,
    ) -> TimeseriesWrappedOutcome:
        """Process one frame and return the fused, uncertainty-tagged outcome.

        Parameters
        ----------
        model_input:
            One DDM input row.
        stateless_quality_values:
            The stateless quality-factor values of this frame, ordered as
            ``layout.stateless_names``.
        new_series:
            True when the tracking component signals a new physical object
            (clears the buffer before processing).
        scope_factors:
            Named scope-factor values when a scope model is configured.
        """
        model_input = np.atleast_2d(np.asarray(model_input, dtype=float))
        stateless = np.asarray(stateless_quality_values, dtype=float).ravel()
        if stateless.size != len(self.layout.stateless_names):
            raise ValidationError(
                f"expected {len(self.layout.stateless_names)} stateless quality "
                f"values, got {stateless.size}"
            )

        isolated_outcome = int(np.asarray(self.ddm.predict(model_input))[0])
        isolated_u = float(
            self.stateless_qim.estimate_uncertainty(stateless[None, :])[0]
        )
        if not 0.0 <= isolated_u <= 1.0:  # NaN-rejecting, before any mutation
            raise ValidationError(
                f"stateless uncertainty must lie in [0, 1], got {isolated_u!r}"
            )
        u_scope = 0.0
        if self.scope_model is not None:
            if scope_factors is None:
                raise ValidationError(
                    "this wrapper has a scope model; scope_factors are required"
                )
            u_scope = self.scope_model.incompliance_probability(scope_factors)

        # Reset only after everything fallible ran: a rejected frame must
        # not wipe the current series (mirrors the engine, which validates
        # a whole tick before touching any stream state).
        if new_series:
            self.reset()
        self.buffer.append(isolated_outcome, isolated_u)
        self._step_count += 1

        # Single-segment batch through the same segmented kernels the
        # streaming engine uses, so one stream served alone and the same
        # stream inside a large batch agree bitwise.
        segment = RaggedBatch.from_buffers([self.buffer])
        fused, vote = fuse_segments(self.information_fusion, segment)
        fused_outcome = int(fused[0])
        features = self.layout.assemble_batch(stateless[None, :], segment, fused, vote)
        u_quality = float(
            self.timeseries_qim.estimate_uncertainty(features)[0]
        )

        return TimeseriesWrappedOutcome(
            fused_outcome=fused_outcome,
            fused_uncertainty=combine_uncertainties(u_quality, u_scope),
            isolated_outcome=isolated_outcome,
            isolated_uncertainty=isolated_u,
            timestep=self._step_count - 1,
            scope_incompliance=u_scope,
        )


# ---------------------------------------------------------------------------
# Offline trace path (training / calibration / evaluation)
# ---------------------------------------------------------------------------

@dataclass
class SeriesTrace:
    """Everything the study needs to know about one processed series.

    Attributes
    ----------
    truth:
        Ground-truth class of the series' physical sign.
    outcomes:
        Momentaneous DDM outcomes per step.
    uncertainties:
        Momentaneous stateless-wrapper estimates :math:`u_i` per step.
    fused_outcomes:
        Information-fused outcome per step.
    features:
        taQIM feature rows per step, shape ``(n_steps, layout.n_features)``.
    """

    truth: int
    outcomes: np.ndarray
    uncertainties: np.ndarray
    fused_outcomes: np.ndarray
    features: np.ndarray

    @property
    def n_steps(self) -> int:
        return int(self.outcomes.size)

    def isolated_wrong(self) -> np.ndarray:
        """Binary: momentaneous outcome differs from the truth."""
        return (self.outcomes != self.truth).astype(np.int64)

    def fused_wrong(self) -> np.ndarray:
        """Binary: fused outcome differs from the truth."""
        return (self.fused_outcomes != self.truth).astype(np.int64)


def trace_series(
    outcomes,
    uncertainties,
    stateless_features,
    truth: int,
    layout: QualityFactorLayout,
    information_fusion: InformationFusion | None = None,
) -> SeriesTrace:
    """Replay one series offline, producing the taQIM feature table rows.

    This mirrors :meth:`TimeseriesAwareUncertaintyWrapper.step` exactly but
    takes pre-computed momentaneous outcomes and uncertainties (so the DDM
    and stateless QIM run vectorised over whole datasets beforehand).

    Parameters
    ----------
    outcomes:
        Momentaneous DDM outcomes of the series, oldest first.
    uncertainties:
        Momentaneous stateless estimates :math:`u_i`, aligned with
        ``outcomes``.
    stateless_features:
        Stateless quality-factor rows, shape ``(n_steps, n_stateless)``.
    truth:
        Ground-truth class of the series.
    layout:
        Feature layout (defines which taQFs are appended).
    information_fusion:
        Fusion rule; paper's majority vote when omitted.
    """
    outcomes = np.asarray(outcomes, dtype=np.int64).ravel()
    uncertainties = np.asarray(uncertainties, dtype=float).ravel()
    stateless_features = np.asarray(stateless_features, dtype=float)
    if outcomes.size == 0:
        raise ValidationError("cannot trace an empty series")
    if uncertainties.shape != outcomes.shape:
        raise ValidationError("uncertainties must align with outcomes")
    if not np.all((uncertainties >= 0.0) & (uncertainties <= 1.0)):  # NaN-rejecting
        raise ValidationError("uncertainties must lie in [0, 1]")
    if stateless_features.shape != (outcomes.size, len(layout.stateless_names)):
        raise ValidationError(
            "stateless_features must have shape "
            f"({outcomes.size}, {len(layout.stateless_names)}), "
            f"got {stateless_features.shape}"
        )

    # Every step of the replay evaluates fusion and taQFs on one prefix of
    # the series, so the prefixes go through the segmented kernels as ragged
    # batches -- the array-native fast path the online wrapper and the
    # streaming engine share.  Flattening all prefixes at once costs
    # O(n^2) memory, so long series are processed in row chunks (bitwise
    # equivalent: the kernels reduce each segment independently).
    fusion = information_fusion or MajorityVote()
    n = outcomes.size
    fused = np.empty(n, dtype=np.int64)
    features = np.empty((n, layout.n_features), dtype=float)
    chunk_rows = max(1, _PREFIX_CHUNK_ELEMENTS // n)
    for start in range(0, n, chunk_rows):
        stop = min(start + chunk_rows, n)
        batch = RaggedBatch.prefixes(outcomes, uncertainties, start, stop)
        chunk_fused, vote = fuse_segments(fusion, batch)
        fused[start:stop] = chunk_fused
        features[start:stop] = layout.assemble_batch(
            stateless_features[start:stop], batch, chunk_fused, vote
        )

    return SeriesTrace(
        truth=int(truth),
        outcomes=outcomes,
        uncertainties=uncertainties,
        fused_outcomes=fused,
        features=features,
    )


def stack_traces(traces: list[SeriesTrace]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate trace features and fused-failure labels for taQIM fitting.

    Returns
    -------
    tuple
        ``(X, fused_wrong)`` ready for
        :meth:`repro.core.quality_impact.QualityImpactModel.fit` /
        ``calibrate``.
    """
    if not traces:
        raise ValidationError("need at least one trace")
    X = np.vstack([t.features for t in traces])
    y = np.concatenate([t.fused_wrong() for t in traces])
    return X, y
