"""Simplex-style runtime monitor on top of uncertainty estimates.

The paper motivates uncertainty wrappers with runtime verification: a
monitor watches the wrapped model's dependable uncertainty and, when it
exceeds what the current situation tolerates, overrides the outcome or
triggers a countermeasure (simplex pattern, [8][9][10] in the paper).

:class:`UncertaintyMonitor` implements that decision layer:

* a base acceptance threshold on the failure probability;
* optional hysteresis -- after a fallback, acceptance requires the
  uncertainty to drop below a stricter re-entry threshold, preventing
  rapid accept/fallback oscillation at the boundary;
* a running *risk budget*: the sum of accepted failure probabilities,
  an upper bound (in expectation) on the number of accepted failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "MonitorDecision",
    "MonitorVerdict",
    "MonitorStatistics",
    "UncertaintyMonitor",
    "judge_many",
]


class MonitorDecision(Enum):
    """The two runtime actions of the simplex pattern."""

    ACCEPT = "accept"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class MonitorVerdict:
    """Outcome of one monitored timestep.

    Attributes
    ----------
    decision:
        ACCEPT (use the model outcome) or FALLBACK (use the safe channel).
    uncertainty:
        The uncertainty estimate that was judged.
    threshold:
        The threshold in force for this step (base or re-entry).
    in_hysteresis:
        Whether the stricter re-entry threshold applied.
    """

    decision: MonitorDecision
    uncertainty: float
    threshold: float
    in_hysteresis: bool

    @property
    def accepted(self) -> bool:
        """Convenience: True when the decision is ACCEPT."""
        return self.decision is MonitorDecision.ACCEPT


@dataclass
class MonitorStatistics:
    """Running counters of a monitor's operation."""

    steps: int = 0
    accepted: int = 0
    fallbacks: int = 0
    accepted_risk: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of steps that were accepted (0 when no steps yet)."""
        return self.accepted / self.steps if self.steps else 0.0

    @property
    def expected_accepted_failures(self) -> float:
        """Upper bound (in expectation) on failures among accepted steps.

        The sum of the dependable failure probabilities of every accepted
        outcome; by linearity of expectation this bounds the expected
        number of accepted failures when the estimates are conservative.
        """
        return self.accepted_risk


class UncertaintyMonitor:
    """Accept/fallback policy over dependable uncertainty estimates.

    Parameters
    ----------
    threshold:
        Maximum tolerated failure probability for accepting an outcome.
    reentry_threshold:
        After a fallback, the uncertainty must drop to or below this
        (stricter) value before outcomes are accepted again.  Defaults to
        ``threshold`` (no hysteresis).
    risk_budget:
        Optional cap on the cumulative accepted risk; once the budget is
        exhausted every further step falls back regardless of uncertainty
        (mission-level risk control).
    """

    def __init__(
        self,
        threshold: float,
        reentry_threshold: float | None = None,
        risk_budget: float | None = None,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValidationError(
                f"threshold must lie strictly between 0 and 1, got {threshold}"
            )
        if reentry_threshold is None:
            reentry_threshold = threshold
        if not 0.0 < reentry_threshold <= threshold:
            raise ValidationError(
                "reentry_threshold must lie in (0, threshold]; got "
                f"{reentry_threshold} vs threshold {threshold}"
            )
        if risk_budget is not None and risk_budget <= 0.0:
            raise ValidationError(f"risk_budget must be > 0, got {risk_budget}")
        self.threshold = threshold
        self.reentry_threshold = reentry_threshold
        self.risk_budget = risk_budget
        self.statistics = MonitorStatistics()
        self._in_hysteresis = False

    def reset(self) -> None:
        """Clear hysteresis state and statistics."""
        self.statistics = MonitorStatistics()
        self._in_hysteresis = False

    def judge(self, uncertainty: float) -> MonitorVerdict:
        """Decide ACCEPT or FALLBACK for one uncertainty estimate."""
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(
                f"uncertainty must lie in [0, 1], got {uncertainty!r}"
            )
        stats = self.statistics
        stats.steps += 1

        budget_exhausted = (
            self.risk_budget is not None
            and stats.accepted_risk + uncertainty > self.risk_budget
        )
        threshold = (
            self.reentry_threshold if self._in_hysteresis else self.threshold
        )
        accept = uncertainty <= threshold and not budget_exhausted
        verdict = MonitorVerdict(
            decision=MonitorDecision.ACCEPT if accept else MonitorDecision.FALLBACK,
            uncertainty=float(uncertainty),
            threshold=threshold,
            in_hysteresis=self._in_hysteresis,
        )
        if accept:
            stats.accepted += 1
            stats.accepted_risk += float(uncertainty)
            self._in_hysteresis = False
        else:
            stats.fallbacks += 1
            self._in_hysteresis = self.reentry_threshold < self.threshold
        return verdict

    # ------------------------------------------------------------------
    # State export / restore (serving snapshots and shard migration).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Portable monitor state: configuration, hysteresis, statistics.

        JSON-serializable; feed it back through :meth:`from_state_dict` to
        reconstruct a monitor that continues exactly where this one stands
        (same thresholds, same remaining risk budget, same hysteresis
        latch, same counters).
        """
        return {
            "threshold": self.threshold,
            "reentry_threshold": self.reentry_threshold,
            "risk_budget": self.risk_budget,
            "in_hysteresis": self._in_hysteresis,
            "statistics": {
                "steps": self.statistics.steps,
                "accepted": self.statistics.accepted,
                "fallbacks": self.statistics.fallbacks,
                "accepted_risk": self.statistics.accepted_risk,
            },
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "UncertaintyMonitor":
        """Rebuild a monitor from :meth:`state_dict` output."""
        try:
            monitor = cls(
                threshold=state["threshold"],
                reentry_threshold=state["reentry_threshold"],
                risk_budget=state["risk_budget"],
            )
            stats = state["statistics"]
            monitor.statistics = MonitorStatistics(
                steps=int(stats["steps"]),
                accepted=int(stats["accepted"]),
                fallbacks=int(stats["fallbacks"]),
                accepted_risk=float(stats["accepted_risk"]),
            )
            monitor._in_hysteresis = bool(state["in_hysteresis"])
        except KeyError as missing:
            raise ValidationError(
                f"monitor state is missing key {missing.args[0]!r}"
            ) from None
        return monitor


_ACCEPT = MonitorDecision.ACCEPT
_FALLBACK = MonitorDecision.FALLBACK


def judge_many(
    monitors: Sequence[UncertaintyMonitor], uncertainties
) -> list[MonitorVerdict]:
    """Judge one uncertainty per monitor, vectorized across monitors.

    Exactly equivalent to ``[m.judge(u) for m, u in zip(monitors, us)]``
    (same verdicts, same statistics and hysteresis transitions), but the
    threshold/budget arithmetic runs as numpy array operations -- the
    difference between the monitor stage dominating and disappearing at
    10k+ concurrent streams.

    The monitors must be distinct objects (enforced): judging the same
    monitor twice within one call would miss the sequential interaction
    of its hysteresis and budget state -- a shared monitor would hand
    out ACCEPTs its budget no longer covers.  Validation is
    all-or-nothing: any rejected input raises before *any* monitor is
    touched.
    """
    monitors = list(monitors)
    n = len(monitors)
    u = np.asarray(uncertainties, dtype=float).ravel()
    if u.size != n:
        raise ValidationError(
            f"got {u.size} uncertainties for {n} monitors"
        )
    if n == 0:
        return []
    if len({id(m) for m in monitors}) != n:
        raise ValidationError(
            "judge_many requires distinct monitor objects; a shared monitor "
            "must be judged sequentially so each verdict sees the budget and "
            "hysteresis updates of the previous one"
        )
    if not np.all((u >= 0.0) & (u <= 1.0)):  # NaN-rejecting
        raise ValidationError("uncertainties must lie in [0, 1]")

    thresholds = np.fromiter((m.threshold for m in monitors), dtype=float, count=n)
    reentries = np.fromiter(
        (m.reentry_threshold for m in monitors), dtype=float, count=n
    )
    in_hyst = np.fromiter((m._in_hysteresis for m in monitors), dtype=bool, count=n)
    budgets = np.fromiter(
        (np.inf if m.risk_budget is None else m.risk_budget for m in monitors),
        dtype=float,
        count=n,
    )
    risks = np.fromiter(
        (m.statistics.accepted_risk for m in monitors), dtype=float, count=n
    )

    # Identical comparisons to ``judge``: an infinite budget can never be
    # exhausted by finite accepted risk, so the None case folds into inf.
    exhausted = risks + u > budgets
    used = np.where(in_hyst, reentries, thresholds)
    accept = (u <= used) & ~exhausted
    hyst_next = np.where(accept, False, reentries < thresholds)

    verdicts = []
    rows = zip(
        monitors,
        u.tolist(),
        used.tolist(),
        accept.tolist(),
        in_hyst.tolist(),
        hyst_next.tolist(),
    )
    for monitor, u_i, threshold_i, accept_i, hyst_i, hyst_next_i in rows:
        stats = monitor.statistics
        stats.steps += 1
        if accept_i:
            stats.accepted += 1
            stats.accepted_risk += u_i
        else:
            stats.fallbacks += 1
        monitor._in_hysteresis = hyst_next_i
        verdicts.append(
            MonitorVerdict(
                decision=_ACCEPT if accept_i else _FALLBACK,
                uncertainty=u_i,
                threshold=threshold_i,
                in_hysteresis=hyst_i,
            )
        )
    return verdicts
