"""Simplex-style runtime monitor on top of uncertainty estimates.

The paper motivates uncertainty wrappers with runtime verification: a
monitor watches the wrapped model's dependable uncertainty and, when it
exceeds what the current situation tolerates, overrides the outcome or
triggers a countermeasure (simplex pattern, [8][9][10] in the paper).

:class:`UncertaintyMonitor` implements that decision layer:

* a base acceptance threshold on the failure probability;
* optional hysteresis -- after a fallback, acceptance requires the
  uncertainty to drop below a stricter re-entry threshold, preventing
  rapid accept/fallback oscillation at the boundary;
* a running *risk budget*: the sum of accepted failure probabilities,
  an upper bound (in expectation) on the number of accepted failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import ValidationError

__all__ = ["MonitorDecision", "MonitorVerdict", "MonitorStatistics", "UncertaintyMonitor"]


class MonitorDecision(Enum):
    """The two runtime actions of the simplex pattern."""

    ACCEPT = "accept"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class MonitorVerdict:
    """Outcome of one monitored timestep.

    Attributes
    ----------
    decision:
        ACCEPT (use the model outcome) or FALLBACK (use the safe channel).
    uncertainty:
        The uncertainty estimate that was judged.
    threshold:
        The threshold in force for this step (base or re-entry).
    in_hysteresis:
        Whether the stricter re-entry threshold applied.
    """

    decision: MonitorDecision
    uncertainty: float
    threshold: float
    in_hysteresis: bool

    @property
    def accepted(self) -> bool:
        """Convenience: True when the decision is ACCEPT."""
        return self.decision is MonitorDecision.ACCEPT


@dataclass
class MonitorStatistics:
    """Running counters of a monitor's operation."""

    steps: int = 0
    accepted: int = 0
    fallbacks: int = 0
    accepted_risk: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of steps that were accepted (0 when no steps yet)."""
        return self.accepted / self.steps if self.steps else 0.0

    @property
    def expected_accepted_failures(self) -> float:
        """Upper bound (in expectation) on failures among accepted steps.

        The sum of the dependable failure probabilities of every accepted
        outcome; by linearity of expectation this bounds the expected
        number of accepted failures when the estimates are conservative.
        """
        return self.accepted_risk


class UncertaintyMonitor:
    """Accept/fallback policy over dependable uncertainty estimates.

    Parameters
    ----------
    threshold:
        Maximum tolerated failure probability for accepting an outcome.
    reentry_threshold:
        After a fallback, the uncertainty must drop to or below this
        (stricter) value before outcomes are accepted again.  Defaults to
        ``threshold`` (no hysteresis).
    risk_budget:
        Optional cap on the cumulative accepted risk; once the budget is
        exhausted every further step falls back regardless of uncertainty
        (mission-level risk control).
    """

    def __init__(
        self,
        threshold: float,
        reentry_threshold: float | None = None,
        risk_budget: float | None = None,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValidationError(
                f"threshold must lie strictly between 0 and 1, got {threshold}"
            )
        if reentry_threshold is None:
            reentry_threshold = threshold
        if not 0.0 < reentry_threshold <= threshold:
            raise ValidationError(
                "reentry_threshold must lie in (0, threshold]; got "
                f"{reentry_threshold} vs threshold {threshold}"
            )
        if risk_budget is not None and risk_budget <= 0.0:
            raise ValidationError(f"risk_budget must be > 0, got {risk_budget}")
        self.threshold = threshold
        self.reentry_threshold = reentry_threshold
        self.risk_budget = risk_budget
        self.statistics = MonitorStatistics()
        self._in_hysteresis = False

    def reset(self) -> None:
        """Clear hysteresis state and statistics."""
        self.statistics = MonitorStatistics()
        self._in_hysteresis = False

    def judge(self, uncertainty: float) -> MonitorVerdict:
        """Decide ACCEPT or FALLBACK for one uncertainty estimate."""
        if not 0.0 <= uncertainty <= 1.0:
            raise ValidationError(
                f"uncertainty must lie in [0, 1], got {uncertainty!r}"
            )
        stats = self.statistics
        stats.steps += 1

        budget_exhausted = (
            self.risk_budget is not None
            and stats.accepted_risk + uncertainty > self.risk_budget
        )
        threshold = (
            self.reentry_threshold if self._in_hysteresis else self.threshold
        )
        accept = uncertainty <= threshold and not budget_exhausted
        verdict = MonitorVerdict(
            decision=MonitorDecision.ACCEPT if accept else MonitorDecision.FALLBACK,
            uncertainty=float(uncertainty),
            threshold=threshold,
            in_hysteresis=self._in_hysteresis,
        )
        if accept:
            stats.accepted += 1
            stats.accepted_risk += float(uncertainty)
            self._in_hysteresis = False
        else:
            stats.fallbacks += 1
            self._in_hysteresis = self.reentry_threshold < self.threshold
        return verdict
