"""Combination of quality-impact and scope-compliance uncertainties.

The uncertainty wrapper's final estimate merges the input-quality-related
uncertainty (from the quality impact model) with the scope-compliance-
related uncertainty (from the scope model).  Treating the two failure causes
as non-exclusive, the combined certainty is the product of the component
certainties::

    1 - u = (1 - u_quality) * (1 - u_scope)

which is the standard series-system composition used by the framework.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["combine_uncertainties"]


def combine_uncertainties(u_quality, u_scope):
    """Combine quality- and scope-related uncertainty estimates.

    Parameters
    ----------
    u_quality:
        Input-quality-related uncertainty (scalar or array, in ``[0, 1]``).
    u_scope:
        Scope-incompliance probability (scalar or array, broadcastable).

    Returns
    -------
    float or numpy.ndarray
        ``1 - (1 - u_quality) * (1 - u_scope)``; scalar when both inputs
        are scalars.
    """
    uq = np.asarray(u_quality, dtype=float)
    us = np.asarray(u_scope, dtype=float)
    if np.any((uq < 0.0) | (uq > 1.0)):
        raise ValidationError("u_quality must lie in [0, 1]")
    if np.any((us < 0.0) | (us > 1.0)):
        raise ValidationError("u_scope must lie in [0, 1]")
    combined = 1.0 - (1.0 - uq) * (1.0 - us)
    if np.ndim(u_quality) == 0 and np.ndim(u_scope) == 0:
        return float(combined)
    return combined
