"""Ragged segment batches: many variable-length timeseries as flat arrays.

The serving engine processes one buffered timeseries per tracked object, and
the different objects have been tracked for different numbers of frames.  A
:class:`RaggedBatch` stores such a collection as flat ``outcomes`` /
``uncertainties`` arrays plus per-segment ``offsets``/``lengths``, which is
the layout every vectorized kernel in this codebase consumes: the batched
majority vote (:mod:`repro.fusion.vectorized`), the batched taQF computation
(:func:`repro.core.quality_factors.compute_taqf_matrix`), and through them
the online wrapper, the offline trace path, and the streaming engine.

All three callers build their segments from the *same* contiguous arrays and
reduce them with the *same* segmented numpy kernels, so a stream processed
alone and the same stream processed inside a 1000-stream batch produce
bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["RaggedBatch", "segment_class_counts"]


@dataclass(frozen=True)
class RaggedBatch:
    """A batch of variable-length outcome/uncertainty series, flattened.

    Attributes
    ----------
    outcomes:
        All segments' momentaneous outcomes concatenated, oldest first
        within each segment (``int64``).
    uncertainties:
        Momentaneous uncertainties aligned with ``outcomes`` (``float64``).
    offsets:
        Start index of each segment within the flat arrays (``intp``).
    lengths:
        Number of elements of each segment (``int64``, all ``>= 1``).
    """

    outcomes: np.ndarray
    uncertainties: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray

    @property
    def n_segments(self) -> int:
        """Number of series in the batch."""
        return int(self.lengths.size)

    @property
    def total(self) -> int:
        """Total number of flattened elements."""
        return int(self.outcomes.size)

    def segment_ids(self) -> np.ndarray:
        """Segment index per flat element (``[0,0,...,1,1,...]``)."""
        return np.repeat(np.arange(self.n_segments), self.lengths)

    def certainties(self) -> np.ndarray:
        """Flat complements ``c_j = 1 - u_j`` of the uncertainties."""
        return 1.0 - self.uncertainties

    def expand(self, per_segment: np.ndarray) -> np.ndarray:
        """Broadcast one value per segment onto the flat element axis."""
        return np.repeat(per_segment, self.lengths)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_segments(cls, segments) -> "RaggedBatch":
        """Build a batch from ``(outcomes, uncertainties)`` array pairs.

        Each pair is one segment; arrays are copied into the flat layout.
        """
        if not segments:
            raise ValidationError("need at least one segment")
        outs, uncs, lengths = [], [], []
        for outcomes, uncertainties in segments:
            outcomes = np.asarray(outcomes, dtype=np.int64).ravel()
            uncertainties = np.asarray(uncertainties, dtype=float).ravel()
            if outcomes.size == 0:
                raise ValidationError("segments must contain at least one step")
            if outcomes.size != uncertainties.size:
                raise ValidationError(
                    "segment outcomes and uncertainties must align, got "
                    f"{outcomes.size} vs {uncertainties.size}"
                )
            outs.append(outcomes)
            uncs.append(uncertainties)
            lengths.append(outcomes.size)
        lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.zeros(lengths.size, dtype=np.intp)
        np.cumsum(lengths[:-1], out=offsets[1:])
        return cls(
            outcomes=np.concatenate(outs),
            uncertainties=np.concatenate(uncs),
            offsets=offsets,
            lengths=lengths,
        )

    @classmethod
    def from_buffers(cls, buffers) -> "RaggedBatch":
        """Build a batch from :class:`~repro.core.buffer.TimeseriesBuffer`\\ s.

        Uses the buffers' O(1) array views; every buffer must be non-empty.
        """
        return cls.from_segments(
            [(b.outcomes_view(), b.uncertainties_view()) for b in buffers]
        )

    @classmethod
    def prefixes(
        cls, outcomes, uncertainties, start: int = 0, stop: int | None = None
    ) -> "RaggedBatch":
        """Prefixes of one series as a batch: segment ``t`` is ``[:t+1]``.

        This is the offline trace layout: replaying a series of length
        ``L`` step by step evaluates the fusion and the taQFs on every
        prefix, so the trace path hands the prefixes to the batched
        kernels instead of looping.  ``start``/``stop`` select a range of
        prefix rows (``start <= t < stop``) so long series can be
        processed in chunks: flattening all ``L`` prefixes at once costs
        ``L * (L + 1) / 2`` elements.
        """
        outcomes = np.asarray(outcomes, dtype=np.int64).ravel()
        uncertainties = np.asarray(uncertainties, dtype=float).ravel()
        if outcomes.size == 0:
            raise ValidationError("cannot build prefixes of an empty series")
        if outcomes.size != uncertainties.size:
            raise ValidationError("uncertainties must align with outcomes")
        n = outcomes.size
        stop = n if stop is None else stop
        if not 0 <= start < stop <= n:
            raise ValidationError(
                f"invalid prefix row range [{start}, {stop}) for a series "
                f"of {n} steps"
            )
        lengths = np.arange(start + 1, stop + 1, dtype=np.int64)
        offsets = np.zeros(lengths.size, dtype=np.intp)
        np.cumsum(lengths[:-1], out=offsets[1:])
        # Flat element k of segment t is outcomes[k]: positions within each
        # segment run 0..t, so the gather index is position-within-segment.
        total = int(lengths.sum())
        positions = np.arange(total) - np.repeat(offsets, lengths)
        return cls(
            outcomes=outcomes[positions],
            uncertainties=uncertainties[positions],
            offsets=offsets,
            lengths=lengths,
        )


def segment_class_counts(batch: RaggedBatch, with_key: bool = False):
    """Per-segment occurrence counts of every outcome class in the batch.

    Returns
    -------
    tuple
        ``(codes, counts)`` where ``codes`` holds the distinct outcome
        values of the whole batch (sorted) and ``counts`` has shape
        ``(n_segments, codes.size)`` with exact integer counts.  With
        ``with_key=True`` additionally returns ``key``, the flat
        ``segment * codes.size + code_index`` per element -- the scatter
        index the vectorized vote reuses for its tie-break pass.

    Notes
    -----
    Memory is ``n_segments * n_distinct_classes`` -- fine for classifier
    label spaces (GTSRB: 43), not meant for unbounded id spaces.
    """
    codes, inverse = np.unique(batch.outcomes, return_inverse=True)
    key = batch.segment_ids() * codes.size + inverse
    counts = np.bincount(key, minlength=batch.n_segments * codes.size)
    counts = counts.reshape(batch.n_segments, codes.size)
    if with_key:
        return codes, counts, key
    return codes, counts
