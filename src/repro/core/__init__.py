"""Core: uncertainty wrappers, quality factors, quality impact, scope, fusion glue.

This package implements the paper's contribution: the classical stateless
uncertainty wrapper (Fig. 1) and its timeseries-aware extension (Fig. 2)
with the four timeseries-aware quality factors taQF1-taQF4.
"""

from repro.core.buffer import TimeseriesBuffer
from repro.core.combination import combine_uncertainties
from repro.core.monitor import (
    MonitorDecision,
    MonitorStatistics,
    MonitorVerdict,
    UncertaintyMonitor,
)
from repro.core.quality_factors import (
    QualityFactorLayout,
    TAQF_NAMES,
    TAQF_REGISTRY,
    compute_taqf_matrix,
    compute_taqf_vector,
    taqf_cumulative_certainty,
    taqf_length,
    taqf_ratio,
    taqf_unique_count,
)
from repro.core.quality_impact import BOUND_FUNCTIONS, QualityImpactModel
from repro.core.ragged import RaggedBatch, segment_class_counts
from repro.core.scope import BoundaryCheck, ScopeComplianceModel, SimilarityScope
from repro.core.timeseries_wrapper import (
    SeriesTrace,
    TimeseriesAwareUncertaintyWrapper,
    TimeseriesWrappedOutcome,
    stack_traces,
    trace_series,
)
from repro.core.wrapper import UncertaintyWrapper, WrappedOutcome

__all__ = [
    "TimeseriesBuffer",
    "combine_uncertainties",
    "MonitorDecision",
    "MonitorStatistics",
    "MonitorVerdict",
    "UncertaintyMonitor",
    "QualityFactorLayout",
    "TAQF_NAMES",
    "TAQF_REGISTRY",
    "compute_taqf_matrix",
    "compute_taqf_vector",
    "RaggedBatch",
    "segment_class_counts",
    "taqf_cumulative_certainty",
    "taqf_length",
    "taqf_ratio",
    "taqf_unique_count",
    "BOUND_FUNCTIONS",
    "QualityImpactModel",
    "BoundaryCheck",
    "ScopeComplianceModel",
    "SimilarityScope",
    "SeriesTrace",
    "TimeseriesAwareUncertaintyWrapper",
    "TimeseriesWrappedOutcome",
    "stack_traces",
    "trace_series",
    "UncertaintyWrapper",
    "WrappedOutcome",
]
