"""Scope compliance model: is the DDM operating inside its intended scope?

The onion-shell model attributes part of the runtime uncertainty to *scope
compliance*: applying a model outside its target application scope (TAS).
The paper describes two mechanisms -- "fixed boundary checks or the
computation of a similarity degree between the data at runtime and the data
used during DDM development" -- and omits the scope model from its study
(all data in scope).  We implement both mechanisms so the full wrapper
pattern is available; an example exercises it end-to-end.

The model emits a *scope-incompliance probability* ``u_scope`` in ``[0, 1]``
that the combination step (:mod:`repro.core.combination`) merges with the
quality-related uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError, ScopeError, ValidationError

__all__ = ["BoundaryCheck", "SimilarityScope", "ScopeComplianceModel"]


@dataclass(frozen=True)
class BoundaryCheck:
    """A hard admissible interval for one scope factor.

    Attributes
    ----------
    name:
        Scope-factor name (e.g. ``"latitude"``).
    low / high:
        Inclusive admissible range; ``-inf``/``inf`` leave a side open.
    """

    name: str
    low: float = float("-inf")
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValidationError(
                f"boundary check {self.name!r} has low > high ({self.low} > {self.high})"
            )

    def passes(self, value: float) -> bool:
        """Whether the value lies within the admissible interval."""
        return self.low <= value <= self.high


class SimilarityScope:
    """k-nearest-neighbour similarity to the development data.

    At fit time the model memorises (a subsample of) the development scope
    factors and the distribution of each point's mean distance to its ``k``
    nearest neighbours.  At runtime a case whose kNN distance exceeds the
    calibration quantile is increasingly suspected to be out of scope; the
    incompliance score ramps linearly from 0 at the quantile to 1 at
    ``ramp_factor`` times the quantile.

    Parameters
    ----------
    k:
        Number of neighbours.
    quantile:
        Distance quantile of the development data regarded as "still
        clearly in scope".
    ramp_factor:
        Multiple of the quantile distance at which incompliance saturates
        at 1.
    max_reference:
        Upper bound on stored reference points (subsampled at fit time).
    """

    def __init__(
        self,
        k: int = 10,
        quantile: float = 0.99,
        ramp_factor: float = 3.0,
        max_reference: int = 5000,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if not 0.0 < quantile < 1.0:
            raise ValidationError(f"quantile must be in (0, 1), got {quantile}")
        if ramp_factor <= 1.0:
            raise ValidationError(f"ramp_factor must be > 1, got {ramp_factor}")
        if max_reference < 2:
            raise ValidationError(f"max_reference must be >= 2, got {max_reference}")
        self.k = k
        self.quantile = quantile
        self.ramp_factor = ramp_factor
        self.max_reference = max_reference
        self._reference: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._threshold: float | None = None

    def fit(self, X, rng: np.random.Generator | None = None) -> "SimilarityScope":
        """Memorise development-scope data and calibrate the distance scale."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < self.k + 1:
            raise ValidationError(
                f"need a 2-D array with more than k={self.k} rows, got shape {X.shape}"
            )
        if X.shape[0] > self.max_reference:
            rng = rng or np.random.default_rng(0)
            X = X[rng.choice(X.shape[0], self.max_reference, replace=False)]
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._reference = X / scale
        distances = self._knn_distances(self._reference, exclude_self=True)
        self._threshold = float(np.quantile(distances, self.quantile))
        if self._threshold <= 0.0:
            self._threshold = 1e-12
        return self

    def _knn_distances(self, Xn: np.ndarray, exclude_self: bool = False) -> np.ndarray:
        """Mean distance to the k nearest reference points per query row."""
        if self._reference is None:
            raise NotFittedError("SimilarityScope is not fitted; call fit() first")
        diffs = Xn[:, None, :] - self._reference[None, :, :]
        d = np.sqrt(np.sum(diffs**2, axis=2))
        k = self.k
        if exclude_self:
            # Each row's zero self-distance must not count as a neighbour.
            np.fill_diagonal(d, np.inf)
        k = min(k, d.shape[1] - (1 if exclude_self else 0))
        part = np.partition(d, kth=k - 1, axis=1)[:, :k]
        return part.mean(axis=1)

    def incompliance(self, X) -> np.ndarray:
        """Per-row scope-incompliance score in ``[0, 1]``."""
        if self._reference is None or self._threshold is None:
            raise NotFittedError("SimilarityScope is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._reference.shape[1]:
            raise ValidationError(
                f"X must have shape (n, {self._reference.shape[1]}), got {X.shape}"
            )
        distances = self._knn_distances(X / self._scale)
        excess = (distances - self._threshold) / (
            self._threshold * (self.ramp_factor - 1.0)
        )
        return np.clip(excess, 0.0, 1.0)


class ScopeComplianceModel:
    """Combines boundary checks and similarity into one scope estimate.

    The incompliance probability of a case is 1 when any boundary check
    fails, otherwise the similarity-based score (0 when no similarity model
    is configured).

    Parameters
    ----------
    checks:
        Boundary checks, evaluated against named scope factors.
    similarity:
        Optional fitted :class:`SimilarityScope` over the numeric scope
        factors.
    similarity_factors:
        Names (and order) of the scope factors fed to the similarity model.
    """

    def __init__(
        self,
        checks: list[BoundaryCheck] | None = None,
        similarity: SimilarityScope | None = None,
        similarity_factors: tuple[str, ...] = (),
    ) -> None:
        self.checks = list(checks or [])
        self.similarity = similarity
        self.similarity_factors = tuple(similarity_factors)
        if similarity is not None and not similarity_factors:
            raise ValidationError(
                "similarity_factors must name the columns fed to the similarity model"
            )

    def incompliance_probability(self, scope_factors: dict[str, float]) -> float:
        """Scope-incompliance estimate for one case.

        Parameters
        ----------
        scope_factors:
            Mapping from scope-factor name to value; must contain every
            factor referenced by a boundary check or the similarity model.
        """
        for check in self.checks:
            if check.name not in scope_factors:
                raise ScopeError(
                    f"scope factor {check.name!r} required by a boundary check is missing"
                )
            if not check.passes(float(scope_factors[check.name])):
                return 1.0
        if self.similarity is None:
            return 0.0
        try:
            row = np.array(
                [[float(scope_factors[name]) for name in self.similarity_factors]]
            )
        except KeyError as missing:
            raise ScopeError(
                f"scope factor {missing.args[0]!r} required by the similarity model is missing"
            ) from None
        return float(self.similarity.incompliance(row)[0])
