"""Bootstrap confidence intervals for study statistics.

The reproduction reports point estimates for every paper metric; this module
adds non-parametric bootstrap confidence intervals so result tables can be
qualified with sampling noise.  Timeseries data is resampled *by series*
(cluster bootstrap) because cases within one series are strongly dependent --
the very phenomenon the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "cluster_bootstrap_ci",
]


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap estimate with its percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def width(self) -> float:
        """Return the width of the confidence interval."""
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.5f} [{self.lower:.5f}, {self.upper:.5f}]"


def bootstrap_ci(
    statistic: Callable[[np.ndarray], float],
    data,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` over i.i.d. ``data`` rows.

    Parameters
    ----------
    statistic:
        Callable mapping a (resampled) data array to a scalar.
    data:
        Array whose first axis indexes observations.
    confidence:
        Two-sided coverage of the percentile interval.
    n_resamples:
        Number of bootstrap replicates.
    rng:
        Source of randomness; a fresh default generator if omitted.
    """
    arr = np.asarray(data)
    if arr.shape[0] < 2:
        raise ValidationError("bootstrap requires at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
    if n_resamples < 1:
        raise ValidationError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = rng or np.random.default_rng()
    n = arr.shape[0]
    replicates = np.empty(n_resamples, dtype=float)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        replicates[b] = statistic(arr[idx])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(arr)),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def cluster_bootstrap_ci(
    statistic: Callable[[np.ndarray], float],
    clusters: Sequence,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI resampling whole clusters (timeseries).

    Parameters
    ----------
    statistic:
        Callable mapping a flat observation array to a scalar.
    clusters:
        Sequence of per-cluster observation arrays; clusters are resampled
        with replacement and their contents concatenated before computing
        the statistic.  This respects within-series dependence.
    """
    groups = [np.asarray(c) for c in clusters]
    if len(groups) < 2:
        raise ValidationError("cluster bootstrap requires at least two clusters")
    if any(g.shape[0] == 0 for g in groups):
        raise ValidationError("clusters must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
    if n_resamples < 1:
        raise ValidationError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = rng or np.random.default_rng()
    n = len(groups)
    replicates = np.empty(n_resamples, dtype=float)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        replicates[b] = statistic(np.concatenate([groups[i] for i in idx]))
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(np.concatenate(groups))),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        n_resamples=n_resamples,
    )
