"""Binomial proportion confidence bounds.

The uncertainty-wrapper framework turns the empirical error rate observed in
each decision-tree leaf into a *dependable* uncertainty estimate: an upper
confidence bound on the true misclassification probability of the wrapped
model for inputs falling into that leaf.  The paper uses one-sided
Clopper-Pearson bounds at a confidence level of 0.999; this module provides
that bound plus the common alternatives (Wilson, Jeffreys, Hoeffding) so
their tightness can be compared in ablation benchmarks.

All functions accept scalar or array-like ``successes`` and broadcast with
``trials`` following numpy rules, and all return plain ``float`` for scalar
input and ``numpy.ndarray`` otherwise.

Terminology: in this module a "success" is an *observed failure of the
wrapped model* -- the event whose probability the wrapper bounds.  The bound
returned by the ``*_upper`` functions therefore reads as "with probability at
least ``confidence``, the true failure probability does not exceed this
value".
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sps

from repro.exceptions import ValidationError

__all__ = [
    "clopper_pearson_upper",
    "clopper_pearson_lower",
    "clopper_pearson_interval",
    "wilson_upper",
    "jeffreys_upper",
    "hoeffding_upper",
    "required_samples_for_bound",
]


def _validate(successes, trials, confidence: float):
    """Broadcast and validate inputs shared by all bound functions."""
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must lie strictly between 0 and 1, got {confidence!r}"
        )
    k = np.asarray(successes, dtype=float)
    n = np.asarray(trials, dtype=float)
    if np.any(n <= 0):
        raise ValidationError("trials must be positive")
    if np.any(k < 0):
        raise ValidationError("successes must be non-negative")
    if np.any(k > n):
        raise ValidationError("successes cannot exceed trials")
    return k, n


def _as_input_shape(value: np.ndarray, *inputs) -> float | np.ndarray:
    """Return a scalar if every input was scalar, else the array."""
    if all(np.ndim(x) == 0 for x in inputs):
        return float(value)
    return value


def clopper_pearson_upper(successes, trials, confidence: float = 0.999):
    """One-sided Clopper-Pearson upper bound on a binomial proportion.

    This is the exact (conservative) bound used by the uncertainty wrapper
    to derive per-leaf uncertainty guarantees.  For ``k`` observed failures
    in ``n`` samples the upper bound is the ``confidence`` quantile of the
    ``Beta(k + 1, n - k)`` distribution; for ``k == n`` the bound is 1.

    Parameters
    ----------
    successes:
        Number of observed events (model failures), scalar or array.
    trials:
        Number of observations, scalar or array (broadcasts with
        ``successes``).
    confidence:
        One-sided coverage probability, e.g. ``0.999`` as in the paper.

    Returns
    -------
    float or numpy.ndarray
        Upper bound(s) on the true event probability.
    """
    k, n = _validate(successes, trials, confidence)
    k_b, n_b = np.broadcast_arrays(k, n)
    upper = np.ones_like(k_b, dtype=float)
    open_mask = k_b < n_b
    if np.any(open_mask):
        upper[open_mask] = _sps.beta.ppf(
            confidence, k_b[open_mask] + 1.0, n_b[open_mask] - k_b[open_mask]
        )
    return _as_input_shape(upper, successes, trials)


def clopper_pearson_lower(successes, trials, confidence: float = 0.999):
    """One-sided Clopper-Pearson lower bound on a binomial proportion.

    For ``k`` observed events in ``n`` samples the lower bound is the
    ``1 - confidence`` quantile of ``Beta(k, n - k + 1)``; for ``k == 0``
    the bound is 0.
    """
    k, n = _validate(successes, trials, confidence)
    k_b, n_b = np.broadcast_arrays(k, n)
    lower = np.zeros_like(k_b, dtype=float)
    open_mask = k_b > 0
    if np.any(open_mask):
        lower[open_mask] = _sps.beta.ppf(
            1.0 - confidence, k_b[open_mask], n_b[open_mask] - k_b[open_mask] + 1.0
        )
    return _as_input_shape(lower, successes, trials)


def clopper_pearson_interval(successes, trials, confidence: float = 0.999):
    """Two-sided Clopper-Pearson interval with total coverage ``confidence``.

    The miscoverage ``1 - confidence`` is split evenly between the two
    tails, so each one-sided bound is computed at level
    ``(1 + confidence) / 2``.

    Returns
    -------
    tuple
        ``(lower, upper)`` bounds, each scalar or array.
    """
    side = (1.0 + confidence) / 2.0
    return (
        clopper_pearson_lower(successes, trials, side),
        clopper_pearson_upper(successes, trials, side),
    )


def wilson_upper(successes, trials, confidence: float = 0.999):
    """Wilson score upper bound on a binomial proportion.

    Less conservative than Clopper-Pearson; included for the guarantee-
    tightness ablation.  Uses the one-sided normal quantile
    ``z = Phi^{-1}(confidence)``.
    """
    k, n = _validate(successes, trials, confidence)
    z = _sps.norm.ppf(confidence)
    p_hat = k / n
    denom = 1.0 + z * z / n
    centre = p_hat + z * z / (2.0 * n)
    margin = z * np.sqrt(p_hat * (1.0 - p_hat) / n + z * z / (4.0 * n * n))
    upper = np.minimum(1.0, (centre + margin) / denom)
    return _as_input_shape(upper, successes, trials)


def jeffreys_upper(successes, trials, confidence: float = 0.999):
    """Jeffreys (Bayesian, ``Beta(1/2, 1/2)`` prior) upper bound.

    The bound is the ``confidence`` quantile of the posterior
    ``Beta(k + 1/2, n - k + 1/2)``.  By convention the bound is clamped to
    1 when ``k == n`` (the posterior quantile can otherwise be < 1 even
    with no observed non-events).
    """
    k, n = _validate(successes, trials, confidence)
    k_b, n_b = np.broadcast_arrays(k, n)
    upper = _sps.beta.ppf(confidence, k_b + 0.5, n_b - k_b + 0.5)
    upper = np.where(k_b >= n_b, 1.0, upper)
    return _as_input_shape(upper, successes, trials)


def hoeffding_upper(successes, trials, confidence: float = 0.999):
    """Distribution-free Hoeffding upper bound on a binomial proportion.

    ``p_hat + sqrt(log(1 / (1 - confidence)) / (2 n))``, clamped to 1.
    Much looser than the exact bounds but requires no distributional
    machinery; included as the conservative end of the ablation.
    """
    k, n = _validate(successes, trials, confidence)
    margin = np.sqrt(np.log(1.0 / (1.0 - confidence)) / (2.0 * n))
    upper = np.minimum(1.0, k / n + margin)
    return _as_input_shape(upper, successes, trials)


def required_samples_for_bound(
    target_bound: float, confidence: float = 0.999, max_samples: int = 10_000_000
) -> int:
    """Smallest ``n`` such that a zero-failure leaf certifies ``target_bound``.

    The minimum uncertainty an uncertainty wrapper can ever guarantee is the
    Clopper-Pearson upper bound of a leaf with zero observed failures; this
    helper inverts that relationship.  For zero failures the bound is
    ``1 - (1 - confidence)**(1/n)``, so the required sample count has a
    closed form.

    Raises
    ------
    ValidationError
        If ``target_bound`` is not in ``(0, 1)`` or would require more than
        ``max_samples`` samples.
    """
    if not 0.0 < target_bound < 1.0:
        raise ValidationError(
            f"target_bound must lie strictly between 0 and 1, got {target_bound!r}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must lie strictly between 0 and 1, got {confidence!r}"
        )
    n = int(np.ceil(np.log(1.0 - confidence) / np.log(1.0 - target_bound)))
    n = max(n, 1)
    if n > max_samples:
        raise ValidationError(
            f"certifying a bound of {target_bound} at confidence {confidence} "
            f"needs {n} samples, exceeding max_samples={max_samples}"
        )
    # Guard against rounding at the boundary: nudge until the bound holds.
    while clopper_pearson_upper(0, n, confidence) > target_bound:
        n += 1
        if n > max_samples:
            raise ValidationError(
                "sample requirement exceeded max_samples during refinement"
            )
    return n


def zero_failure_bound(trials, confidence: float = 0.999):
    """Clopper-Pearson upper bound for a leaf with zero observed failures.

    Convenience wrapper for the quantity highlighted in the paper's Fig. 5:
    the *lowest guaranteeable uncertainty*, reached by leaves that misclassify
    nothing on the calibration data.  Equals
    ``1 - (1 - confidence)**(1 / trials)``.
    """
    k = np.zeros_like(np.asarray(trials, dtype=float))
    return clopper_pearson_upper(k if np.ndim(trials) else 0, trials, confidence)


__all__.append("zero_failure_bound")
