"""Statistics substrate: binomial bounds, Brier scoring, calibration, bootstrap.

These are the building blocks the uncertainty wrapper framework relies on:
Clopper-Pearson bounds turn per-leaf error counts into dependable guarantees,
the Murphy decomposition of the Brier score produces the paper's Table I
columns, and the quantile calibration curves reproduce Fig. 6.
"""

from repro.stats.binomial import (
    clopper_pearson_interval,
    clopper_pearson_lower,
    clopper_pearson_upper,
    hoeffding_upper,
    jeffreys_upper,
    required_samples_for_bound,
    wilson_upper,
    zero_failure_bound,
)
from repro.stats.bootstrap import BootstrapResult, bootstrap_ci, cluster_bootstrap_ci
from repro.stats.brier import BrierDecomposition, brier_score, murphy_decomposition
from repro.stats.calibration import (
    CalibrationCurve,
    expected_calibration_error,
    maximum_calibration_error,
    quantile_calibration_curve,
    width_calibration_curve,
)

__all__ = [
    "clopper_pearson_interval",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "hoeffding_upper",
    "jeffreys_upper",
    "required_samples_for_bound",
    "wilson_upper",
    "zero_failure_bound",
    "BootstrapResult",
    "bootstrap_ci",
    "cluster_bootstrap_ci",
    "BrierDecomposition",
    "brier_score",
    "murphy_decomposition",
    "CalibrationCurve",
    "expected_calibration_error",
    "maximum_calibration_error",
    "quantile_calibration_curve",
    "width_calibration_curve",
]
