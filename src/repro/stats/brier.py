"""Brier score and its Murphy decomposition.

The paper evaluates uncertainty estimators with the Brier score ``bs`` of the
predicted failure probability ``u`` against the indicator of an actual
failure, and decomposes it following Murphy (1973) as::

    bs = variance - resolution + unreliability

where (using the paper's naming)

* ``variance`` is the variance of the outcome indicator, ``obar * (1 - obar)``
  with ``obar`` the overall failure rate.  It depends only on the wrapped
  model, not on the uncertainty estimator.
* ``resolution`` measures how much the per-group observed failure rates
  deviate from ``obar`` -- higher is better, bounded above by ``variance``.
* ``unreliability`` (the classical *reliability* term) measures calibration:
  the weighted squared gap between predicted and observed failure rates
  within groups of equal prediction -- lower is better.

The paper additionally reports

* ``unspecificity = variance - resolution`` (lower is better), and
* ``overconfidence``: the portion of ``unreliability`` contributed by groups
  whose prediction *underestimates* the observed failure rate (``u < obar_k``)
  -- the dependability-critical direction.  The remainder is
  ``underconfidence``.

Groups are formed by the *unique predicted values*, which makes the
decomposition exact (it reproduces ``bs`` to machine precision).  This is the
natural choice here because decision-tree-based wrappers emit a finite set of
per-leaf uncertainty values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "brier_score",
    "BrierDecomposition",
    "murphy_decomposition",
]


def _validate_pair(forecasts, outcomes) -> tuple[np.ndarray, np.ndarray]:
    f = np.asarray(forecasts, dtype=float).ravel()
    o = np.asarray(outcomes, dtype=float).ravel()
    if f.shape != o.shape:
        raise ValidationError(
            f"forecasts and outcomes must have equal length, got {f.shape} vs {o.shape}"
        )
    if f.size == 0:
        raise ValidationError("cannot score an empty forecast set")
    if np.any((f < 0.0) | (f > 1.0)):
        raise ValidationError("forecast probabilities must lie in [0, 1]")
    if not np.all(np.isin(o, (0.0, 1.0))):
        raise ValidationError("outcomes must be binary indicators (0 or 1)")
    return f, o


def brier_score(forecasts, outcomes) -> float:
    """Mean squared error between forecast probabilities and binary outcomes.

    Parameters
    ----------
    forecasts:
        Predicted probabilities of the event (here: model failure), in
        ``[0, 1]``.
    outcomes:
        Binary event indicators (1 = the model failed on this case).

    Returns
    -------
    float
        ``mean((forecasts - outcomes) ** 2)``.
    """
    f, o = _validate_pair(forecasts, outcomes)
    return float(np.mean((f - o) ** 2))


@dataclass(frozen=True)
class BrierDecomposition:
    """Murphy decomposition of a Brier score (paper's Table I columns).

    Attributes
    ----------
    brier:
        The full Brier score.
    variance:
        Outcome variance ``obar * (1 - obar)`` -- estimator-independent.
    resolution:
        Weighted squared deviation of group failure rates from ``obar``.
    unreliability:
        Weighted squared gap between group forecasts and group failure
        rates (classical reliability term; lower is better).
    unspecificity:
        ``variance - resolution`` (lower is better).
    overconfidence:
        Portion of ``unreliability`` from groups where the forecast
        underestimates the observed failure rate.
    underconfidence:
        Remaining portion of ``unreliability``.
    base_rate:
        Overall observed failure rate ``obar``.
    n_groups:
        Number of distinct forecast values.
    n_samples:
        Number of scored cases.
    """

    brier: float
    variance: float
    resolution: float
    unreliability: float
    unspecificity: float
    overconfidence: float
    underconfidence: float
    base_rate: float
    n_groups: int
    n_samples: int

    def identity_residual(self) -> float:
        """Return ``brier - (variance - resolution + unreliability)``.

        Zero up to floating-point error; exposed so tests and callers can
        assert the decomposition is exact.
        """
        return self.brier - (self.variance - self.resolution + self.unreliability)

    def as_dict(self) -> dict[str, float]:
        """Return the scores as a plain dictionary (for table rendering)."""
        return {
            "brier": self.brier,
            "variance": self.variance,
            "resolution": self.resolution,
            "unreliability": self.unreliability,
            "unspecificity": self.unspecificity,
            "overconfidence": self.overconfidence,
            "underconfidence": self.underconfidence,
        }


def murphy_decomposition(forecasts, outcomes) -> BrierDecomposition:
    """Exact Murphy (1973) decomposition grouped by unique forecast values.

    Parameters
    ----------
    forecasts:
        Predicted failure probabilities.
    outcomes:
        Binary failure indicators.

    Returns
    -------
    BrierDecomposition
        All components; satisfies
        ``brier == variance - resolution + unreliability`` exactly (up to
        floating-point round-off) because grouping is by unique forecast
        value.
    """
    f, o = _validate_pair(forecasts, outcomes)
    n = f.size
    obar = float(np.mean(o))
    variance = obar * (1.0 - obar)

    values, inverse = np.unique(f, return_inverse=True)
    group_n = np.bincount(inverse, minlength=values.size).astype(float)
    group_events = np.bincount(inverse, weights=o, minlength=values.size)
    group_rate = group_events / group_n
    weights = group_n / n

    resolution = float(np.sum(weights * (group_rate - obar) ** 2))
    gaps = values - group_rate
    unreliability = float(np.sum(weights * gaps**2))
    over_mask = gaps < 0.0  # forecast below observed failure rate
    overconfidence = float(np.sum(weights[over_mask] * gaps[over_mask] ** 2))
    underconfidence = unreliability - overconfidence

    return BrierDecomposition(
        brier=float(np.mean((f - o) ** 2)),
        variance=variance,
        resolution=resolution,
        unreliability=unreliability,
        unspecificity=variance - resolution,
        overconfidence=overconfidence,
        underconfidence=underconfidence,
        base_rate=obar,
        n_groups=int(values.size),
        n_samples=int(n),
    )
