"""Calibration diagnostics for uncertainty estimates.

The paper's Fig. 6 plots quantiles of the predicted certainty ``c = 1 - u``
(in 10 % steps) against the observed correctness within each quantile bin;
points below the diagonal are overconfident, points above underconfident.
This module reproduces that plot as data (no plotting dependency is
available) and adds the standard expected-calibration-error summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "CalibrationCurve",
    "quantile_calibration_curve",
    "width_calibration_curve",
    "expected_calibration_error",
    "maximum_calibration_error",
]


@dataclass(frozen=True)
class CalibrationCurve:
    """A binned calibration curve.

    Attributes
    ----------
    predicted:
        Mean predicted certainty per bin (x-axis of the paper's Fig. 6).
    observed:
        Observed correctness rate per bin (y-axis).
    counts:
        Number of cases per bin.
    edges:
        Bin edges in predicted-certainty space (length ``len(counts) + 1``).
    """

    predicted: np.ndarray
    observed: np.ndarray
    counts: np.ndarray
    edges: np.ndarray

    def __len__(self) -> int:
        return int(self.counts.size)

    def overconfidence_gaps(self) -> np.ndarray:
        """Per-bin ``predicted - observed`` certainty gap.

        Positive values mean the bin is overconfident (predicted certainty
        exceeds observed correctness), matching "below the diagonal" in the
        paper's calibration plot.
        """
        return self.predicted - self.observed

    def is_overconfident(self) -> np.ndarray:
        """Boolean mask of bins lying below the diagonal."""
        return self.overconfidence_gaps() > 0.0


def _validate(certainties, correct) -> tuple[np.ndarray, np.ndarray]:
    c = np.asarray(certainties, dtype=float).ravel()
    k = np.asarray(correct, dtype=float).ravel()
    if c.shape != k.shape:
        raise ValidationError(
            f"certainties and correctness must have equal length, got {c.shape} vs {k.shape}"
        )
    if c.size == 0:
        raise ValidationError("cannot compute a calibration curve from no cases")
    if np.any((c < 0.0) | (c > 1.0)):
        raise ValidationError("certainties must lie in [0, 1]")
    if not np.all(np.isin(k, (0.0, 1.0))):
        raise ValidationError("correctness must be binary indicators (0 or 1)")
    return c, k


def quantile_calibration_curve(certainties, correct, n_bins: int = 10) -> CalibrationCurve:
    """Calibration curve with equal-count (quantile) bins.

    This is the construction behind the paper's Fig. 6: cases are sorted by
    predicted certainty and cut into ``n_bins`` quantile groups (10 % steps
    for the default of 10 bins).  Bins that would be empty because many
    cases share one predicted value are dropped.

    Parameters
    ----------
    certainties:
        Predicted certainty ``1 - u`` per case.
    correct:
        Binary correctness indicator per case.
    n_bins:
        Number of quantile bins.

    Returns
    -------
    CalibrationCurve
    """
    c, k = _validate(certainties, correct)
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    quantiles = np.quantile(c, np.linspace(0.0, 1.0, n_bins + 1))
    # Collapse duplicate edges (heavy ties on guaranteed-minimum uncertainty
    # values are common for tree-based wrappers).
    edges = np.unique(quantiles)
    if edges.size < 2:
        # All certainties identical: a single degenerate bin.
        return CalibrationCurve(
            predicted=np.array([float(c[0])]),
            observed=np.array([float(np.mean(k))]),
            counts=np.array([c.size]),
            edges=np.array([edges[0], edges[0]]),
        )
    return _bin_curve(c, k, edges)


def width_calibration_curve(certainties, correct, n_bins: int = 10) -> CalibrationCurve:
    """Calibration curve with equal-width bins over ``[0, 1]``.

    Complementary view to :func:`quantile_calibration_curve`; empty bins are
    dropped from the result.
    """
    c, k = _validate(certainties, correct)
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    return _bin_curve(c, k, edges)


def _bin_curve(c: np.ndarray, k: np.ndarray, edges: np.ndarray) -> CalibrationCurve:
    """Bin cases by certainty and aggregate one curve point per bin."""
    idx = np.clip(np.searchsorted(edges, c, side="right") - 1, 0, edges.size - 2)
    n_bins = edges.size - 1
    counts = np.bincount(idx, minlength=n_bins)
    sum_pred = np.bincount(idx, weights=c, minlength=n_bins)
    sum_obs = np.bincount(idx, weights=k, minlength=n_bins)
    keep = counts > 0
    counts_kept = counts[keep]
    return CalibrationCurve(
        predicted=sum_pred[keep] / counts_kept,
        observed=sum_obs[keep] / counts_kept,
        counts=counts_kept,
        edges=edges,
    )


def expected_calibration_error(certainties, correct, n_bins: int = 10) -> float:
    """Count-weighted mean absolute calibration gap (ECE).

    Uses equal-width bins, the common convention.
    """
    curve = width_calibration_curve(certainties, correct, n_bins=n_bins)
    weights = curve.counts / curve.counts.sum()
    return float(np.sum(weights * np.abs(curve.predicted - curve.observed)))


def maximum_calibration_error(certainties, correct, n_bins: int = 10) -> float:
    """Largest absolute calibration gap over equal-width bins (MCE)."""
    curve = width_calibration_curve(certainties, correct, n_bins=n_bins)
    return float(np.max(np.abs(curve.predicted - curve.observed)))
