"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "NotCalibratedError",
    "ValidationError",
    "EmptyBufferError",
    "ScopeError",
    "ClusterError",
    "ClusterWorkerError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NotFittedError(ReproError):
    """An estimator was used before its ``fit`` method was called."""


class NotCalibratedError(ReproError):
    """An uncertainty model was queried before calibration.

    Uncertainty wrappers provide *dependable* estimates only after the
    calibration step computed statistical guarantees on held-out data.
    Querying uncertainties before that point would silently return
    non-guaranteed values, so the library refuses instead.
    """


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, range, or dtype)."""


class EmptyBufferError(ReproError):
    """A timeseries buffer was queried while it contained no timesteps."""


class ScopeError(ReproError):
    """A scope-compliance model could not evaluate the given scope factors."""


class ClusterError(ReproError):
    """A sharded serving cluster failed at the process/transport layer.

    Raised when a shard worker dies, answers out of protocol, or reports
    an error that does not map back onto a library exception type.
    """


class ClusterWorkerError(ClusterError):
    """One specific shard worker died or fell out of protocol.

    Carries the shard index (``None`` when unknown) so callers can tell a
    transport-level worker loss apart from a cluster-wide failure and know
    which shard to exclude or respawn.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class ProtocolError(ClusterError):
    """A received wire frame could not be decoded.

    Raised on malformed, truncated, or version-incompatible cluster
    protocol frames, and on unknown command vocabulary -- never on
    well-formed frames reporting an application error (those re-raise
    the reported exception type).  Unserializable *outgoing* payloads
    raise :class:`ValidationError` instead: they are caller input
    errors, rejected before anything crosses the wire.
    """
