"""Random forest classifier on top of the CART substrate.

The paper notes that the transparent decision tree could be traded for
more powerful models "at the cost of transparency".  This bagged-CART
ensemble quantifies that trade-off: the forest pools bootstrap-trained
trees with feature subsampling.  For the quality-impact use case the
interesting comparison is *probability quality* (forest) vs. *guaranteed
bounds on a reviewable structure* (single calibrated tree); the ablation
benchmark runs exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.trees.cart import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagging ensemble of CART trees with per-tree feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_leaf / criterion:
        Passed through to every tree.
    max_features:
        Number of feature columns each tree sees; ``None`` uses
        ``ceil(sqrt(n_features))``.
    seed:
        Seed for bootstrap and feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int | None = 8,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        if max_features is not None and max_features < 1:
            raise ValidationError(f"max_features must be >= 1, got {max_features}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed
        self._fitted = False

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the ensemble on features ``X`` and labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValidationError("y must be 1-dimensional and aligned with X")
        if X.shape[0] == 0:
            raise ValidationError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        self.classes_ = np.unique(y)
        k = self.max_features or int(np.ceil(np.sqrt(d)))
        k = min(k, d)

        self.trees_: list[DecisionTreeClassifier] = []
        self.feature_subsets_: list[np.ndarray] = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)
            cols = np.sort(rng.choice(d, size=k, replace=False))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                criterion=self.criterion,
            )
            tree.fit(X[rows][:, cols], y[rows])
            self.trees_.append(tree)
            self.feature_subsets_.append(cols)
        self.n_features_in_ = d
        self._fitted = True
        return self

    def _check(self, X) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(
                "RandomForestClassifier is not fitted; call fit() first"
            )
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        return X

    def predict_proba(self, X) -> np.ndarray:
        """Mean of per-tree leaf-frequency probabilities."""
        X = self._check(X)
        total = np.zeros((X.shape[0], self.classes_.size))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree, cols in zip(self.trees_, self.feature_subsets_):
            proba = tree.predict_proba(X[:, cols])
            # Trees may have seen only a subset of classes in their bootstrap.
            for j, c in enumerate(tree.classes_):
                total[:, class_index[c]] += proba[:, j]
        return total / self.n_estimators

    def predict(self, X) -> np.ndarray:
        """Majority (mean-probability) prediction."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
