"""CART decision trees built from scratch (the quality-impact-model substrate).

sklearn is not available in this environment, so the tree the uncertainty
wrapper framework depends on -- CART with gini impurity, bounded depth, and
calibration-set leaf pruning -- is implemented here on plain numpy.
"""

from repro.trees.cart import LEAF, DecisionTreeClassifier
from repro.trees.criteria import entropy_from_counts, get_criterion, gini_from_counts
from repro.trees.export import export_text
from repro.trees.forest import RandomForestClassifier
from repro.trees.pruning import (
    collapse_node,
    count_samples_per_node,
    prune_to_min_samples,
)
from repro.trees.splitter import SplitCandidate, find_best_split

__all__ = [
    "LEAF",
    "DecisionTreeClassifier",
    "entropy_from_counts",
    "get_criterion",
    "gini_from_counts",
    "export_text",
    "RandomForestClassifier",
    "collapse_node",
    "count_samples_per_node",
    "prune_to_min_samples",
    "SplitCandidate",
    "find_best_split",
]
