"""CART decision-tree classifier built on numpy.

This is the tree behind the uncertainty wrapper's quality impact model.  It
follows the sklearn conventions that matter for this project -- array-based
node storage with ``children_left_ == -1`` marking leaves, ``apply`` for leaf
lookup, ``predict_proba`` from per-leaf class counts -- while staying small
enough to audit, which is the transparency property the paper leans on.

The tree is grown depth-first with an explicit stack (no recursion limits),
using exact best-split search (:mod:`repro.trees.splitter`) and either gini
or entropy impurity (:mod:`repro.trees.criteria`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.trees.criteria import get_criterion
from repro.trees.splitter import find_best_split

__all__ = ["DecisionTreeClassifier", "LEAF"]

LEAF = -1
"""Sentinel used in the children arrays to mark a leaf node."""


class DecisionTreeClassifier:
    """A CART classification tree.

    Parameters
    ----------
    max_depth:
        Maximum depth of the tree (the paper uses 8 for the quality impact
        model).  ``None`` grows until other constraints stop the split.
    min_samples_split:
        Minimum number of samples a node must hold to be considered for
        splitting.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    min_impurity_decrease:
        Minimum weighted impurity improvement required to accept a split.
    criterion:
        ``"gini"`` (paper default) or ``"entropy"``.

    Attributes (after :meth:`fit`)
    ------------------------------
    classes_:
        Sorted array of distinct class labels.
    node_count_:
        Number of nodes in the tree.
    children_left_ / children_right_:
        Child indices per node (:data:`LEAF` for leaves).
    feature_ / threshold_:
        Split definition per internal node (``-2`` / ``nan`` for leaves).
    value_:
        Per-node class-count matrix of shape ``(node_count_, n_classes)``.
    impurity_:
        Per-node training impurity.
    n_node_samples_:
        Per-node training sample count.
    depth_:
        Per-node depth (root is 0).
    """

    def __init__(
        self,
        max_depth: int | None = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        criterion: str = "gini",
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if min_impurity_decrease < 0:
            raise ValidationError(
                f"min_impurity_decrease must be >= 0, got {min_impurity_decrease}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.criterion = criterion
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on feature matrix ``X`` and labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValidationError(
                f"y must be 1-dimensional with len(X) entries, got shape {y.shape}"
            )
        if X.shape[0] == 0:
            raise ValidationError("cannot fit a tree on an empty dataset")
        if not np.all(np.isfinite(X)):
            raise ValidationError("X contains non-finite values")

        criterion_fn = get_criterion(self.criterion)
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        n_classes = self.classes_.size
        self.n_features_in_ = X.shape[1]

        children_left: list[int] = []
        children_right: list[int] = []
        feature: list[int] = []
        threshold: list[float] = []
        value: list[np.ndarray] = []
        impurity: list[float] = []
        n_node_samples: list[int] = []
        depth: list[int] = []

        def new_node(sample_idx: np.ndarray, node_depth: int) -> int:
            node_id = len(children_left)
            counts = np.bincount(y_codes[sample_idx], minlength=n_classes).astype(float)
            children_left.append(LEAF)
            children_right.append(LEAF)
            feature.append(-2)
            threshold.append(np.nan)
            value.append(counts)
            impurity.append(float(criterion_fn(counts)))
            n_node_samples.append(int(sample_idx.size))
            depth.append(node_depth)
            return node_id

        n_total = X.shape[0]
        root_idx = np.arange(n_total)
        root = new_node(root_idx, 0)
        stack: list[tuple[int, np.ndarray]] = [(root, root_idx)]

        while stack:
            node_id, sample_idx = stack.pop()
            node_depth = depth[node_id]
            if self.max_depth is not None and node_depth >= self.max_depth:
                continue
            if sample_idx.size < self.min_samples_split:
                continue
            if impurity[node_id] <= 0.0:
                continue
            split = find_best_split(
                X,
                y_codes,
                sample_idx,
                n_classes,
                criterion_fn,
                self.min_samples_leaf,
            )
            if split is None:
                continue
            weighted_improvement = split.improvement * sample_idx.size / n_total
            if weighted_improvement < self.min_impurity_decrease:
                continue
            go_left = X[sample_idx, split.feature] <= split.threshold
            left_idx = sample_idx[go_left]
            right_idx = sample_idx[~go_left]
            if left_idx.size == 0 or right_idx.size == 0:
                continue  # numerically degenerate threshold; refuse the split
            left_id = new_node(left_idx, node_depth + 1)
            right_id = new_node(right_idx, node_depth + 1)
            children_left[node_id] = left_id
            children_right[node_id] = right_id
            feature[node_id] = split.feature
            threshold[node_id] = split.threshold
            stack.append((left_id, left_idx))
            stack.append((right_id, right_idx))

        self.children_left_ = np.asarray(children_left, dtype=np.int64)
        self.children_right_ = np.asarray(children_right, dtype=np.int64)
        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold, dtype=float)
        self.value_ = np.vstack(value)
        self.impurity_ = np.asarray(impurity, dtype=float)
        self.n_node_samples_ = np.asarray(n_node_samples, dtype=np.int64)
        self.depth_ = np.asarray(depth, dtype=np.int64)
        self.node_count_ = len(children_left)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "this DecisionTreeClassifier has not been fitted yet; call fit() first"
            )

    def _check_X(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the tree was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def apply(self, X) -> np.ndarray:
        """Return the leaf index each row of ``X`` falls into.

        Descends all rows in lock-step: at each iteration every still-
        internal row moves one level down, so the loop runs at most
        ``max_depth`` times regardless of sample count.
        """
        self._check_fitted()
        X = self._check_X(X)
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.children_left_[nodes] != LEAF
        while np.any(active):
            current = nodes[active]
            feat = self.feature_[current]
            thresh = self.threshold_[current]
            rows = np.nonzero(active)[0]
            go_left = X[rows, feat] <= thresh
            nodes[rows] = np.where(
                go_left, self.children_left_[current], self.children_right_[current]
            )
            active = self.children_left_[nodes] != LEAF
        return nodes

    def predict_proba(self, X) -> np.ndarray:
        """Class-frequency probabilities of the training samples per leaf."""
        leaves = self.apply(X)
        counts = self.value_[leaves]
        totals = counts.sum(axis=1, keepdims=True)
        return counts / totals

    def predict(self, X) -> np.ndarray:
        """Majority-class prediction per row."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_leaf(self, node_id: int) -> bool:
        """Return True when ``node_id`` is a leaf."""
        self._check_fitted()
        return self.children_left_[node_id] == LEAF

    def reachable_nodes(self) -> np.ndarray:
        """Return ids of nodes reachable from the root.

        After pruning (see :mod:`repro.trees.pruning`) collapsed subtrees
        stay in the node arrays but are disconnected; all introspection
        helpers only consider reachable nodes.
        """
        self._check_fitted()
        reachable = np.zeros(self.node_count_, dtype=bool)
        stack = [0]
        while stack:
            node = stack.pop()
            reachable[node] = True
            left = self.children_left_[node]
            if left != LEAF:
                stack.append(int(left))
                stack.append(int(self.children_right_[node]))
        return np.nonzero(reachable)[0]

    def leaf_ids(self) -> np.ndarray:
        """Return the indices of all reachable leaves."""
        nodes = self.reachable_nodes()
        return nodes[self.children_left_[nodes] == LEAF]

    def get_depth(self) -> int:
        """Return the depth of the deepest reachable node."""
        return int(self.depth_[self.reachable_nodes()].max())

    def get_n_leaves(self) -> int:
        """Return the number of leaves."""
        return int(self.leaf_ids().size)

    def feature_importances(self) -> np.ndarray:
        """Impurity-based feature importances (normalised to sum to 1).

        Each internal node contributes its weighted impurity decrease to
        the importance of its splitting feature, mirroring sklearn's
        definition.
        """
        self._check_fitted()
        importances = np.zeros(self.n_features_in_, dtype=float)
        n_total = float(self.n_node_samples_[0])
        for node in self.reachable_nodes():
            left = self.children_left_[node]
            if left == LEAF:
                continue
            right = self.children_right_[node]
            n = self.n_node_samples_[node]
            n_l = self.n_node_samples_[left]
            n_r = self.n_node_samples_[right]
            decrease = (
                n * self.impurity_[node]
                - n_l * self.impurity_[left]
                - n_r * self.impurity_[right]
            ) / n_total
            importances[self.feature_[node]] += decrease
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances

    def copy(self) -> "DecisionTreeClassifier":
        """Return a deep copy of the fitted tree (for in-place pruning)."""
        self._check_fitted()
        clone = DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            criterion=self.criterion,
        )
        clone.classes_ = self.classes_.copy()
        clone.n_features_in_ = self.n_features_in_
        clone.children_left_ = self.children_left_.copy()
        clone.children_right_ = self.children_right_.copy()
        clone.feature_ = self.feature_.copy()
        clone.threshold_ = self.threshold_.copy()
        clone.value_ = self.value_.copy()
        clone.impurity_ = self.impurity_.copy()
        clone.n_node_samples_ = self.n_node_samples_.copy()
        clone.depth_ = self.depth_.copy()
        clone.node_count_ = self.node_count_
        clone._fitted = True
        return clone
