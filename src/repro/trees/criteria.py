"""Split-quality criteria for CART trees.

The paper's quality impact model is a CART classification tree "optimized
using the CART algorithm based on the gini index as an approximation for
entropy".  Both criteria are provided; all functions operate on class-count
arrays so the splitter can evaluate thousands of candidate splits in one
vectorised call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["gini_from_counts", "entropy_from_counts", "get_criterion", "CRITERIA"]


def gini_from_counts(counts: np.ndarray) -> np.ndarray:
    """Gini impurity from class counts.

    Parameters
    ----------
    counts:
        Array of shape ``(..., n_classes)`` of non-negative class counts.
        The trailing axis is reduced.

    Returns
    -------
    numpy.ndarray
        ``1 - sum_c (counts_c / total)^2`` with shape ``counts.shape[:-1]``.
        Groups with zero total get impurity 0 (they are empty, hence pure).
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        fractions = counts / total[..., None]
        impurity = 1.0 - np.sum(fractions**2, axis=-1)
    return np.where(total > 0, impurity, 0.0)


def entropy_from_counts(counts: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) from class counts.

    Same shape conventions as :func:`gini_from_counts`; empty groups get
    entropy 0.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        fractions = counts / total[..., None]
        terms = np.where(fractions > 0, -fractions * np.log(fractions), 0.0)
        entropy = terms.sum(axis=-1)
    return np.where(total > 0, entropy, 0.0)


CRITERIA = {
    "gini": gini_from_counts,
    "entropy": entropy_from_counts,
}


def get_criterion(name: str):
    """Look up a criterion function by name (``"gini"`` or ``"entropy"``)."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ValidationError(
            f"unknown criterion {name!r}; expected one of {sorted(CRITERIA)}"
        ) from None
