"""Exact best-split search for CART nodes.

For every feature the candidate thresholds are the midpoints between
consecutive distinct sorted values; split quality is evaluated for all
candidates of one feature in a single vectorised pass over cumulative class
counts.  This keeps tree construction fast enough for the study's
calibration sets (tens of thousands of rows) without any compiled code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SplitCandidate", "find_best_split"]


@dataclass(frozen=True)
class SplitCandidate:
    """The best split found for one node.

    Attributes
    ----------
    feature:
        Column index of the splitting feature.
    threshold:
        Split threshold; samples with ``value <= threshold`` go left.
    improvement:
        Weighted impurity decrease achieved by the split (parent impurity
        minus the child-weighted impurity), in units of the criterion.
    n_left / n_right:
        Sample counts of the resulting children.
    """

    feature: int
    threshold: float
    improvement: float
    n_left: int
    n_right: int


def find_best_split(
    X: np.ndarray,
    y_codes: np.ndarray,
    sample_idx: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
) -> SplitCandidate | None:
    """Search all features for the impurity-minimising binary split.

    Parameters
    ----------
    X:
        Full feature matrix of shape ``(n_samples, n_features)``.
    y_codes:
        Integer class codes aligned with ``X``.
    sample_idx:
        Indices of the samples reaching the node under consideration.
    n_classes:
        Total number of classes (fixes the width of count arrays).
    criterion:
        Impurity function over trailing class-count axes
        (see :mod:`repro.trees.criteria`).
    min_samples_leaf:
        Minimum samples each child must retain; splits violating this are
        discarded.

    Returns
    -------
    SplitCandidate or None
        ``None`` when no admissible split improves on the parent impurity
        (including the cases "node is pure" and "all feature values tied").
    """
    n = sample_idx.size
    if n < 2 * min_samples_leaf:
        return None

    y_node = y_codes[sample_idx]
    parent_counts = np.bincount(y_node, minlength=n_classes).astype(float)
    parent_impurity = float(criterion(parent_counts))
    if parent_impurity <= 0.0:
        return None

    best: SplitCandidate | None = None
    best_improvement = 1e-12  # require strictly positive improvement
    n_features = X.shape[1]
    one_hot = np.zeros((n, n_classes), dtype=float)
    one_hot[np.arange(n), y_node] = 1.0

    for feature in range(n_features):
        values = X[sample_idx, feature]
        order = np.argsort(values, kind="stable")
        v_sorted = values[order]
        if v_sorted[0] == v_sorted[-1]:
            continue  # constant feature at this node

        counts_left = np.cumsum(one_hot[order], axis=0)  # counts for prefix of size i+1
        # Candidate split after position i (0-based): left has i+1 samples.
        sizes_left = np.arange(1, n, dtype=float)
        valid = v_sorted[:-1] < v_sorted[1:]
        valid &= sizes_left >= min_samples_leaf
        valid &= (n - sizes_left) >= min_samples_leaf
        if not np.any(valid):
            continue

        left_counts = counts_left[:-1][valid]
        right_counts = parent_counts[None, :] - left_counts
        nl = sizes_left[valid]
        nr = n - nl
        weighted = (nl * criterion(left_counts) + nr * criterion(right_counts)) / n
        improvements = parent_impurity - weighted
        pos = int(np.argmax(improvements))
        if improvements[pos] > best_improvement:
            best_improvement = float(improvements[pos])
            split_positions = np.nonzero(valid)[0]
            i = split_positions[pos]
            threshold = 0.5 * (v_sorted[i] + v_sorted[i + 1])
            # Guard against degenerate midpoints caused by float rounding.
            if not (v_sorted[i] < threshold <= v_sorted[i + 1]):
                threshold = v_sorted[i]
            best = SplitCandidate(
                feature=feature,
                threshold=float(threshold),
                improvement=best_improvement,
                n_left=int(i + 1),
                n_right=int(n - i - 1),
            )
    return best
