"""Human-readable export of CART trees.

Transparency is a selling point of the uncertainty wrapper approach: domain
experts are supposed to be able to review the quality impact model.  This
module renders a fitted tree as indented text, optionally annotating each
leaf with caller-provided strings (the wrapper uses this to show the
guaranteed uncertainty per leaf).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.trees.cart import LEAF, DecisionTreeClassifier

__all__ = ["export_text"]


def export_text(
    tree: DecisionTreeClassifier,
    feature_names: Sequence[str] | None = None,
    leaf_annotations: Mapping[int, str] | None = None,
    max_depth: int | None = None,
    decimals: int = 4,
) -> str:
    """Render a fitted tree as an indented text diagram.

    Parameters
    ----------
    tree:
        The fitted tree to render.
    feature_names:
        Names for the feature columns; defaults to ``feature_<i>``.
    leaf_annotations:
        Optional mapping from leaf node id to an extra string appended to
        that leaf's line (e.g. ``u <= 0.0072``).
    max_depth:
        Truncate the rendering below this depth (the subtree is summarised
        as ``...``); ``None`` renders everything.
    decimals:
        Decimal places for thresholds.

    Returns
    -------
    str
        Multi-line diagram, one node per line.
    """
    tree._check_fitted()
    if feature_names is not None and len(feature_names) < tree.n_features_in_:
        raise ValidationError(
            f"feature_names has {len(feature_names)} entries but the tree uses "
            f"{tree.n_features_in_} features"
        )
    leaf_annotations = leaf_annotations or {}
    lines: list[str] = []

    def name(feature_id: int) -> str:
        if feature_names is not None:
            return str(feature_names[feature_id])
        return f"feature_{feature_id}"

    def leaf_line(node_id: int, indent: str) -> str:
        counts = tree.value_[node_id]
        total = counts.sum()
        majority = tree.classes_[int(np.argmax(counts))]
        line = f"{indent}leaf #{node_id}: class={majority!r} n={int(total)}"
        annotation = leaf_annotations.get(node_id)
        if annotation:
            line += f" [{annotation}]"
        return line

    def walk(node_id: int, depth: int) -> None:
        indent = "|   " * depth
        if tree.children_left_[node_id] == LEAF:
            lines.append(leaf_line(node_id, indent))
            return
        if max_depth is not None and depth >= max_depth:
            lines.append(f"{indent}node #{node_id}: ...")
            return
        feat = name(int(tree.feature_[node_id]))
        thresh = round(float(tree.threshold_[node_id]), decimals)
        lines.append(f"{indent}{feat} <= {thresh}")
        walk(int(tree.children_left_[node_id]), depth + 1)
        lines.append(f"{indent}{feat} >  {thresh}")
        walk(int(tree.children_right_[node_id]), depth + 1)

    walk(0, 0)
    return "\n".join(lines)
