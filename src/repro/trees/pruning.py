"""Calibration-driven pruning of CART trees.

The uncertainty wrapper calibrates its quality impact model by pruning the
trained tree "so that each leaf in the decision tree was left with at least
200 samples" *of the calibration dataset* and then attaching statistical
guarantees per leaf.  Pruning by calibration count (rather than training
count) matters: the guarantee quality depends on how many held-out samples
support each leaf.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.trees.cart import LEAF, DecisionTreeClassifier

__all__ = [
    "count_samples_per_node",
    "prune_to_min_samples",
    "collapse_node",
]


def count_samples_per_node(tree: DecisionTreeClassifier, X) -> np.ndarray:
    """Count how many rows of ``X`` pass through every node of ``tree``.

    Returns an array of length ``tree.node_count_``; entry 0 (the root)
    equals ``len(X)``.
    """
    counts = np.zeros(tree.node_count_, dtype=np.int64)
    X = np.asarray(X, dtype=float)
    if X.shape[0] == 0:
        return counts
    nodes = np.zeros(X.shape[0], dtype=np.int64)
    np.add.at(counts, nodes, 1)
    active = tree.children_left_[nodes] != LEAF
    while np.any(active):
        rows = np.nonzero(active)[0]
        current = nodes[rows]
        go_left = X[rows, tree.feature_[current]] <= tree.threshold_[current]
        nxt = np.where(
            go_left, tree.children_left_[current], tree.children_right_[current]
        )
        nodes[rows] = nxt
        np.add.at(counts, nxt, 1)
        active = tree.children_left_[nodes] != LEAF
    return counts


def collapse_node(tree: DecisionTreeClassifier, node_id: int) -> None:
    """Turn ``node_id`` into a leaf in place (its subtree becomes unreachable)."""
    if node_id < 0 or node_id >= tree.node_count_:
        raise ValidationError(f"node_id {node_id} out of range")
    tree.children_left_[node_id] = LEAF
    tree.children_right_[node_id] = LEAF
    tree.feature_[node_id] = -2
    tree.threshold_[node_id] = np.nan

def prune_to_min_samples(
    tree: DecisionTreeClassifier, X_calibration, min_samples: int
) -> DecisionTreeClassifier:
    """Return a pruned copy whose every leaf holds >= ``min_samples`` rows.

    Counts are taken over ``X_calibration``.  An internal node is collapsed
    into a leaf whenever either of its children would end up supported by
    fewer than ``min_samples`` calibration rows; the check runs bottom-up so
    collapses propagate towards the root.  The root itself is never removed,
    so if the calibration set is smaller than ``min_samples`` the result is
    a single-leaf tree (and the caller will see the full calibration count
    at the root).

    Parameters
    ----------
    tree:
        A fitted tree; not modified.
    X_calibration:
        Held-out feature rows used for support counting.
    min_samples:
        Minimum calibration rows per surviving leaf (paper: 200).

    Returns
    -------
    DecisionTreeClassifier
        A pruned deep copy of ``tree``.
    """
    if min_samples < 1:
        raise ValidationError(f"min_samples must be >= 1, got {min_samples}")
    pruned = tree.copy()
    counts = count_samples_per_node(pruned, X_calibration)

    # Bottom-up order: children always have larger ids than their parent in
    # our depth-first construction, so iterating ids in reverse visits every
    # child before its parent.
    for node_id in range(pruned.node_count_ - 1, -1, -1):
        left = pruned.children_left_[node_id]
        if left == LEAF:
            continue
        right = pruned.children_right_[node_id]
        if counts[left] < min_samples or counts[right] < min_samples:
            collapse_node(pruned, node_id)
    return pruned
