"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  ``python setup.py develop`` takes the legacy egg-link path instead,
which works offline.  Metadata lives in ``pyproject.toml``; this file only
restates what the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
